# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/two_way_test[1]_include.cmake")
include("/root/repo/build/tests/satisfaction_test[1]_include.cmake")
include("/root/repo/build/tests/graphdb_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/answer_cda_test[1]_include.cmake")
include("/root/repo/build/tests/answer_oda_test[1]_include.cmake")
include("/root/repo/build/tests/certificates_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/crpq_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
