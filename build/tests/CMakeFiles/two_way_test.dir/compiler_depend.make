# Empty compiler generated dependencies file for two_way_test.
# This may be replaced when dependencies are built.
