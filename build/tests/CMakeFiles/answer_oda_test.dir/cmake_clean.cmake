file(REMOVE_RECURSE
  "CMakeFiles/answer_oda_test.dir/answer_oda_test.cc.o"
  "CMakeFiles/answer_oda_test.dir/answer_oda_test.cc.o.d"
  "answer_oda_test"
  "answer_oda_test.pdb"
  "answer_oda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answer_oda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
