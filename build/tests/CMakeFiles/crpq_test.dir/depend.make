# Empty dependencies file for crpq_test.
# This may be replaced when dependencies are built.
