# Empty compiler generated dependencies file for satisfaction_test.
# This may be replaced when dependencies are built.
