file(REMOVE_RECURSE
  "CMakeFiles/satisfaction_test.dir/satisfaction_test.cc.o"
  "CMakeFiles/satisfaction_test.dir/satisfaction_test.cc.o.d"
  "satisfaction_test"
  "satisfaction_test.pdb"
  "satisfaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satisfaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
