
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/satisfaction_test.cc" "tests/CMakeFiles/satisfaction_test.dir/satisfaction_test.cc.o" "gcc" "tests/CMakeFiles/satisfaction_test.dir/satisfaction_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/rpqi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/rpqi_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/answer/CMakeFiles/rpqi_answer.dir/DependInfo.cmake"
  "/root/repo/build/src/crpq/CMakeFiles/rpqi_crpq.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/rpqi_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/rpq/CMakeFiles/rpqi_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/rpqi_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/rpqi_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rpqi_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
