file(REMOVE_RECURSE
  "CMakeFiles/answer_cda_test.dir/answer_cda_test.cc.o"
  "CMakeFiles/answer_cda_test.dir/answer_cda_test.cc.o.d"
  "answer_cda_test"
  "answer_cda_test.pdb"
  "answer_cda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answer_cda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
