# Empty compiler generated dependencies file for answer_cda_test.
# This may be replaced when dependencies are built.
