file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_expression.dir/bench_table1_expression.cc.o"
  "CMakeFiles/bench_table1_expression.dir/bench_table1_expression.cc.o.d"
  "bench_table1_expression"
  "bench_table1_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
