# Empty compiler generated dependencies file for bench_ablation_onthefly.
# This may be replaced when dependencies are built.
