file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_onthefly.dir/bench_ablation_onthefly.cc.o"
  "CMakeFiles/bench_ablation_onthefly.dir/bench_ablation_onthefly.cc.o.d"
  "bench_ablation_onthefly"
  "bench_ablation_onthefly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onthefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
