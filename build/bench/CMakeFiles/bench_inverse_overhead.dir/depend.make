# Empty dependencies file for bench_inverse_overhead.
# This may be replaced when dependencies are built.
