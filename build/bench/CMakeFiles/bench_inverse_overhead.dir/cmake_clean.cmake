file(REMOVE_RECURSE
  "CMakeFiles/bench_inverse_overhead.dir/bench_inverse_overhead.cc.o"
  "CMakeFiles/bench_inverse_overhead.dir/bench_inverse_overhead.cc.o.d"
  "bench_inverse_overhead"
  "bench_inverse_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inverse_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
