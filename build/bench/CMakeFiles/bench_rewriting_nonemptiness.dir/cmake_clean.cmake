file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriting_nonemptiness.dir/bench_rewriting_nonemptiness.cc.o"
  "CMakeFiles/bench_rewriting_nonemptiness.dir/bench_rewriting_nonemptiness.cc.o.d"
  "bench_rewriting_nonemptiness"
  "bench_rewriting_nonemptiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriting_nonemptiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
