# Empty dependencies file for bench_rewriting_nonemptiness.
# This may be replaced when dependencies are built.
