file(REMOVE_RECURSE
  "CMakeFiles/bench_two_way_translation.dir/bench_two_way_translation.cc.o"
  "CMakeFiles/bench_two_way_translation.dir/bench_two_way_translation.cc.o.d"
  "bench_two_way_translation"
  "bench_two_way_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_way_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
