# Empty dependencies file for bench_two_way_translation.
# This may be replaced when dependencies are built.
