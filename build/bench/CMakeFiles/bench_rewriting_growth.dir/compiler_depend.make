# Empty compiler generated dependencies file for bench_rewriting_growth.
# This may be replaced when dependencies are built.
