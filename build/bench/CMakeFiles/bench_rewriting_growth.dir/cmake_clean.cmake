file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriting_growth.dir/bench_rewriting_growth.cc.o"
  "CMakeFiles/bench_rewriting_growth.dir/bench_rewriting_growth.cc.o.d"
  "bench_rewriting_growth"
  "bench_rewriting_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriting_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
