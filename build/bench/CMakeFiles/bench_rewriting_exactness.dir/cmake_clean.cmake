file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriting_exactness.dir/bench_rewriting_exactness.cc.o"
  "CMakeFiles/bench_rewriting_exactness.dir/bench_rewriting_exactness.cc.o.d"
  "bench_rewriting_exactness"
  "bench_rewriting_exactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriting_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
