# Empty compiler generated dependencies file for bench_rewriting_exactness.
# This may be replaced when dependencies are built.
