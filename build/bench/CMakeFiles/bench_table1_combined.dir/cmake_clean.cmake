file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_combined.dir/bench_table1_combined.cc.o"
  "CMakeFiles/bench_table1_combined.dir/bench_table1_combined.cc.o.d"
  "bench_table1_combined"
  "bench_table1_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
