file(REMOVE_RECURSE
  "CMakeFiles/bench_rpqi_eval.dir/bench_rpqi_eval.cc.o"
  "CMakeFiles/bench_rpqi_eval.dir/bench_rpqi_eval.cc.o.d"
  "bench_rpqi_eval"
  "bench_rpqi_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpqi_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
