# Empty dependencies file for bench_rpqi_eval.
# This may be replaced when dependencies are built.
