// Tests for the performance engine of the subset-construction hot paths:
// PairKey pinning, the open-addressed WordVectorInterner, Bitset hash
// caching, and — the core — seeded differential fuzzing of the antichain
// emptiness/containment checks against explicit Determinize-based references
// and of the parallel frontier paths against the serial ones (which must be
// bit-identical).
//
// The base seed defaults to kDefaultSeed and can be overridden through the
// RPQI_FUZZ_SEED environment variable (decimal or 0x-hex); every failure
// message includes the seed in use.

#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "automata/lazy.h"
#include "automata/nfa.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "automata/table_dfa.h"
#include "base/bitset.h"
#include "base/hash.h"
#include "base/interner.h"

namespace rpqi {
namespace {

constexpr uint64_t kDefaultSeed = 0x5eed5eed2026;

uint64_t BaseSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("RPQI_FUZZ_SEED");
    if (env == nullptr || *env == '\0') return kDefaultSeed;
    char* end = nullptr;
    uint64_t parsed = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0') {
      ADD_FAILURE() << "RPQI_FUZZ_SEED='" << env
                    << "' is not a number; using default seed";
      return kDefaultSeed;
    }
    return parsed;
  }();
  return seed;
}

#define RPQI_FUZZ_SCOPE(offset)                                  \
  SCOPED_TRACE(::testing::Message()                              \
               << "reproduce with RPQI_FUZZ_SEED=" << BaseSeed() \
               << " (iteration " << (offset) << ")")

// ---------------------------------------------------------------------------
// PairKey pinning: the packing is part of the on-disk/in-map key contract of
// the subset-transition and visited caches — pin it bit-for-bit.

TEST(PairKeyTest, PacksHighAndLowWords) {
  EXPECT_EQ(PairKey(0, 0), 0u);
  EXPECT_EQ(PairKey(0, 1), 1u);
  EXPECT_EQ(PairKey(1, 0), uint64_t{1} << 32);
  EXPECT_EQ(PairKey(3, 7), (uint64_t{3} << 32) | 7);
  EXPECT_EQ(PairKey((int64_t{1} << 32) - 1, (int64_t{1} << 32) - 1),
            ~uint64_t{0});
}

TEST(PairKeyTest, RoundTrips) {
  for (int64_t a : {int64_t{0}, int64_t{5}, int64_t{70000},
                    (int64_t{1} << 31) - 1}) {
    for (int64_t b : {int64_t{0}, int64_t{9}, int64_t{1 << 20}}) {
      uint64_t key = PairKey(a, b);
      EXPECT_EQ(PairKeyFirst(key), a);
      EXPECT_EQ(PairKeySecond(key), b);
    }
  }
}

TEST(PairKeyTest, NoCollisionsWhereMultiplicativePackingCollides) {
  // subset_id * num_symbols + symbol collides once subset_id exceeds the
  // multiplier; PairKey stays collision-free over the full int range.
  const int num_symbols = 4;
  EXPECT_EQ(5 * num_symbols + 2, 4 * num_symbols + 6);  // the old failure
  EXPECT_NE(PairKey(5, 2), PairKey(4, 6));
  std::set<uint64_t> keys;
  for (int a = 0; a < 64; ++a) {
    for (int b = 0; b < 64; ++b) keys.insert(PairKey(a, b));
  }
  EXPECT_EQ(keys.size(), 64u * 64u);
}

// ---------------------------------------------------------------------------
// WordVectorInterner: dense ids, open-addressed growth, collision spill.

TEST(WordVectorInternerTest, DenseIdsAndLookup) {
  WordVectorInterner interner;
  std::vector<std::vector<uint64_t>> keys;
  for (uint64_t i = 0; i < 500; ++i) keys.push_back({i, i * 3, ~i});
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(interner.Intern(keys[i]), static_cast<int>(i));
  }
  // Re-interning and finding is stable across the table growths above.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(interner.Intern(keys[i]), static_cast<int>(i));
    EXPECT_EQ(interner.Find(keys[i]), static_cast<int>(i));
    EXPECT_EQ(interner.KeyOf(static_cast<int>(i)), keys[i]);
  }
  EXPECT_EQ(interner.Find({123456, 0, 0}), -1);
  EXPECT_EQ(interner.size(), 500);
}

TEST(WordVectorInternerTest, FullHashCollisionsSpillToOverflow) {
  WordVectorInterner interner;
  // Force distinct keys through InternHashed with the SAME 64-bit hash: the
  // first owns the primary slot, the rest must spill by key, all distinct.
  int a = interner.InternHashed({1}, /*hash=*/42);
  int b = interner.InternHashed({2}, /*hash=*/42);
  int c = interner.InternHashed({3}, /*hash=*/42);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(interner.InternHashed({1}, 42), a);
  EXPECT_EQ(interner.InternHashed({2}, 42), b);
  EXPECT_EQ(interner.InternHashed({3}, 42), c);
  EXPECT_EQ(interner.FindHashed({2}, 42), b);
  EXPECT_EQ(interner.FindHashed({9}, 42), -1);
  EXPECT_EQ(interner.KeyOf(b), (std::vector<uint64_t>{2}));
}

// ---------------------------------------------------------------------------
// Bitset cached hash.

TEST(BitsetHashTest, CachedHashTracksMutation) {
  Bitset bits(130);
  EXPECT_EQ(bits.Hash(), HashWords(bits.words()));
  bits.Set(7);
  bits.Set(129);
  EXPECT_EQ(bits.Hash(), HashWords(bits.words()));
  EXPECT_TRUE(bits.CachedHashCoherent());
  bits.Clear();
  EXPECT_EQ(bits.Hash(), HashWords(bits.words()));
  bits.Set(64);
  Bitset copy = bits;
  EXPECT_EQ(copy.Hash(), bits.Hash());
  EXPECT_TRUE(bits.CachedHashCoherent());
  bits.CorruptCachedHashForTesting();
  EXPECT_FALSE(bits.CachedHashCoherent());
}

// ---------------------------------------------------------------------------
// Differential fuzz: antichain vs Determinize-based reference.

/// Explicit reference for L(a) ⊆ L(b): determinize both, BFS the product,
/// look for a state where `a` accepts and `b` does not. Returns the length
/// of a shortest violating word, or -1 when contained. Missing transitions
/// (-1) are rejecting sinks.
int ReferenceViolationLength(const Dfa& da, const Dfa& db) {
  const int sink = -1;
  std::set<std::pair<int, int>> seen;
  std::deque<std::pair<std::pair<int, int>, int>> queue;  // ((qa, qb), depth)
  queue.push_back({{da.initial(), db.initial()}, 0});
  seen.insert(queue.front().first);
  while (!queue.empty()) {
    auto [pair, depth] = queue.front();
    queue.pop_front();
    auto [qa, qb] = pair;
    const bool a_accepts = qa != sink && da.IsAccepting(qa);
    const bool b_accepts = qb != sink && db.IsAccepting(qb);
    if (a_accepts && !b_accepts) return depth;
    for (int symbol = 0; symbol < da.num_symbols(); ++symbol) {
      int na = qa == sink ? sink : da.Next(qa, symbol);
      if (na == sink) continue;  // `a` can no longer accept: no violation
      int nb = qb == sink ? sink : db.Next(qb, symbol);
      if (seen.insert({na, nb}).second) queue.push_back({{na, nb}, depth + 1});
    }
  }
  return -1;
}

TEST(AntichainDifferentialTest, ContainmentMatchesDeterminizeReference) {
  std::mt19937_64 rng(BaseSeed());
  RandomAutomatonOptions options;
  options.num_states = 5;
  options.num_symbols = 2;
  options.transition_density = 1.2;
  for (int iteration = 0; iteration < 500; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    Nfa a = RandomNfa(rng, options);
    Nfa b = RandomNfa(rng, options);
    const bool reference =
        ReferenceViolationLength(Determinize(a), Determinize(b)) < 0;
    EXPECT_EQ(IsContained(a, b), reference);
  }
}

TEST(AntichainDifferentialTest, LazyProductEmptinessMatchesReference) {
  // Emptiness of L(a) ∩ ¬L(b) through the lazy product of a plain subset
  // DFA and a complemented one — the construction the answering pipeline
  // uses — with the antichain active; the reference is the explicit product
  // of determinized automata. Shortest-witness lengths must agree too (the
  // antichain must not skew BFS depth), and the witness itself must be
  // accepted by `a` and rejected by `b`.
  std::mt19937_64 rng(BaseSeed() ^ 0x9e3779b97f4a7c15ULL);
  RandomAutomatonOptions options;
  options.num_states = 6;
  options.num_symbols = 2;
  options.transition_density = 1.0;
  for (int iteration = 0; iteration < 500; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    Nfa a = RandomNfa(rng, options);
    Nfa b = RandomNfa(rng, options);
    Dfa da = Determinize(a);
    Dfa db = Determinize(b);
    const int reference_length = ReferenceViolationLength(da, db);

    LazySubsetDfa left(a);
    LazySubsetDfa not_right(b, /*complement=*/true);
    LazyProductDfa product({&left, &not_right});
    EmptinessResult result =
        FindAcceptedWord(&product, /*max_states=*/1 << 20);
    ASSERT_NE(result.outcome, EmptinessResult::Outcome::kLimitExceeded);
    if (reference_length < 0) {
      EXPECT_EQ(result.outcome, EmptinessResult::Outcome::kEmpty);
    } else {
      ASSERT_EQ(result.outcome, EmptinessResult::Outcome::kFoundWord);
      EXPECT_EQ(static_cast<int>(result.witness.size()), reference_length);
      // Run the witness through the explicit DFAs.
      int qa = da.initial(), qb = db.initial();
      for (int symbol : result.witness) {
        qa = qa < 0 ? -1 : da.Next(qa, symbol);
        qb = qb < 0 ? -1 : db.Next(qb, symbol);
      }
      EXPECT_TRUE(qa >= 0 && da.IsAccepting(qa));
      EXPECT_FALSE(qb >= 0 && db.IsAccepting(qb));
    }
  }
}

TEST(AntichainDifferentialTest, TableDfaEmptinessMatchesMaterialized) {
  // The two-way table translation with complemented acceptance — the A2 /
  // A_(Q,c,d) construction — checked with the antichain against a full
  // materialization of the same lazy automaton (materialization visits every
  // reachable state, no pruning). Verifies both the verdict and the shortest
  // witness length.
  std::mt19937_64 rng(BaseSeed() ^ 0xc4ceb9fe1a85ec53ULL);
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  options.transition_density = 1.0;
  for (int iteration = 0; iteration < 500; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    TwoWayNfa two_way = RandomTwoWayNfa(rng, options);
    for (bool complement : {false, true}) {
      LazyTableDfa for_search(two_way, complement);
      EmptinessResult with_antichain =
          FindAcceptedWord(&for_search, /*max_states=*/1 << 16);

      LazyTableDfa for_materialize(two_way, complement);
      StatusOr<Dfa> materialized =
          MaterializeLazyDfa(&for_materialize, /*max_states=*/1 << 16);
      if (!materialized.ok() ||
          with_antichain.outcome ==
              EmptinessResult::Outcome::kLimitExceeded) {
        continue;  // both sides capped; nothing to compare
      }
      // Reference emptiness: BFS over the explicit DFA.
      std::deque<std::pair<int, int>> queue;  // (state, depth)
      std::set<int> seen{materialized->initial()};
      queue.push_back({materialized->initial(), 0});
      int reference_length = -1;
      while (!queue.empty() && reference_length < 0) {
        auto [q, depth] = queue.front();
        queue.pop_front();
        if (materialized->IsAccepting(q)) {
          reference_length = depth;
          break;
        }
        for (int symbol = 0; symbol < materialized->num_symbols(); ++symbol) {
          int to = materialized->Next(q, symbol);
          if (to >= 0 && seen.insert(to).second) {
            queue.push_back({to, depth + 1});
          }
        }
      }
      if (reference_length < 0) {
        EXPECT_EQ(with_antichain.outcome, EmptinessResult::Outcome::kEmpty);
      } else {
        ASSERT_EQ(with_antichain.outcome,
                  EmptinessResult::Outcome::kFoundWord);
        EXPECT_EQ(static_cast<int>(with_antichain.witness.size()),
                  reference_length);
      }
      // Pruning must never *increase* exploration.
      EXPECT_LE(with_antichain.states_explored,
                for_materialize.NumDiscoveredStates());
    }
  }
}

TEST(AntichainDifferentialTest, SubsumptionSignatureContract) {
  // For every implementation: Subsumes(s, t) must imply the signature
  // conditions grow(t) ⊆ grow(s) and shrink(s) ⊆ shrink(t) lanewise —
  // otherwise the Bloom pre-filter would veto true subsumptions and the
  // searches would silently lose pruning power (or, for the searches that
  // trust the filter, soundness).
  std::mt19937_64 rng(BaseSeed() ^ 0xff51afd7ed558ccdULL);
  RandomAutomatonOptions options;
  options.num_states = 5;
  options.num_symbols = 2;
  auto check_pairs = [](LazyDfa* dfa, int limit) {
    // Discover a few states breadth-first, then compare all pairs.
    std::vector<int> states{dfa->StartState()};
    std::set<int> seen{states[0]};
    for (size_t i = 0; i < states.size() && states.size() < 40; ++i) {
      for (int symbol = 0; symbol < dfa->NumSymbols(); ++symbol) {
        int to = dfa->Step(states[i], symbol);
        if (seen.insert(to).second) states.push_back(to);
        if (static_cast<int>(states.size()) >= limit) break;
      }
    }
    for (int s : states) {
      for (int t : states) {
        if (!dfa->Subsumes(s, t)) continue;
        SubsumptionSig dominator = dfa->SubsumptionSignature(s);
        SubsumptionSig dominated = dfa->SubsumptionSignature(t);
        for (int lane = 0; lane < 2; ++lane) {
          EXPECT_EQ(dominated.grow[lane] & ~dominator.grow[lane], 0u);
          EXPECT_EQ(dominator.shrink[lane] & ~dominated.shrink[lane], 0u);
        }
      }
    }
  };
  for (int iteration = 0; iteration < 200; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    Nfa nfa = RandomNfa(rng, options);
    for (bool complement : {false, true}) {
      LazySubsetDfa subset(nfa, complement);
      check_pairs(&subset, 40);
    }
    TwoWayNfa two_way = RandomTwoWayNfa(rng, options);
    for (bool complement : {false, true}) {
      LazyTableDfa table(two_way, complement);
      check_pairs(&table, 30);
    }
    Nfa other = RandomNfa(rng, options);
    LazySubsetDfa left(nfa);
    LazySubsetDfa right(other, /*complement=*/true);
    LazyProductDfa product({&left, &right});
    check_pairs(&product, 40);
  }
}

// ---------------------------------------------------------------------------
// Parallel frontier vs serial: bit-identical results.

void ExpectSameDfa(const Dfa& serial, const Dfa& parallel) {
  ASSERT_EQ(serial.NumStates(), parallel.NumStates());
  ASSERT_EQ(serial.num_symbols(), parallel.num_symbols());
  EXPECT_EQ(serial.initial(), parallel.initial());
  for (int s = 0; s < serial.NumStates(); ++s) {
    EXPECT_EQ(serial.IsAccepting(s), parallel.IsAccepting(s));
    for (int symbol = 0; symbol < serial.num_symbols(); ++symbol) {
      ASSERT_EQ(serial.Next(s, symbol), parallel.Next(s, symbol))
          << "state " << s << " symbol " << symbol;
    }
  }
}

void ExpectSameNfa(const Nfa& serial, const Nfa& parallel) {
  ASSERT_EQ(serial.NumStates(), parallel.NumStates());
  ASSERT_EQ(serial.num_symbols(), parallel.num_symbols());
  ASSERT_EQ(serial.NumTransitions(), parallel.NumTransitions());
  for (int s = 0; s < serial.NumStates(); ++s) {
    EXPECT_EQ(serial.IsInitial(s), parallel.IsInitial(s));
    EXPECT_EQ(serial.IsAccepting(s), parallel.IsAccepting(s));
    const auto& st = serial.TransitionsFrom(s);
    const auto& pt = parallel.TransitionsFrom(s);
    ASSERT_EQ(st.size(), pt.size()) << "state " << s;
    for (size_t i = 0; i < st.size(); ++i) {
      EXPECT_EQ(st[i].symbol, pt[i].symbol);
      EXPECT_EQ(st[i].to, pt[i].to);
    }
  }
}

TEST(ParallelFrontierTest, DeterminizeBitIdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(BaseSeed() ^ 0x2545f4914f6cdd1dULL);
  RandomAutomatonOptions options;
  options.num_states = 9;
  options.num_symbols = 3;
  options.transition_density = 1.5;
  for (int iteration = 0; iteration < 150; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    Nfa nfa = RandomNfa(rng, options);
    StatusOr<Dfa> serial =
        DeterminizeWithLimit(nfa, /*max_states=*/1 << 16, nullptr, 1);
    ASSERT_TRUE(serial.ok());
    for (int threads : {2, 4}) {
      StatusOr<Dfa> parallel =
          DeterminizeWithLimit(nfa, /*max_states=*/1 << 16, nullptr, threads);
      ASSERT_TRUE(parallel.ok());
      ExpectSameDfa(*serial, *parallel);
    }
  }
}

TEST(AntichainDifferentialTest, RepeatedSearchesReportIdenticalCounters) {
  // Accounting regression test: FindAcceptedWord on the same lazy product
  // must report identical counters every run. The lazy components memoize
  // discovered states across searches, and that cache must not bleed into
  // (or deflate) a later search's explored/pruned/antichain tallies.
  std::mt19937_64 rng(BaseSeed() ^ 0xd1b54a32d192ed03ULL);
  RandomAutomatonOptions options;
  options.num_states = 7;
  options.num_symbols = 2;
  options.transition_density = 1.2;
  for (int iteration = 0; iteration < 100; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    Nfa a = RandomNfa(rng, options);
    Nfa b = RandomNfa(rng, options);
    LazySubsetDfa left(a);
    LazySubsetDfa not_right(b, /*complement=*/true);
    LazyProductDfa product({&left, &not_right});
    EmptinessResult first = FindAcceptedWord(&product, /*max_states=*/1 << 20);
    ASSERT_NE(first.outcome, EmptinessResult::Outcome::kLimitExceeded);
    EmptinessResult second =
        FindAcceptedWord(&product, /*max_states=*/1 << 20);
    EXPECT_EQ(first.outcome, second.outcome);
    EXPECT_EQ(first.witness, second.witness);
    EXPECT_EQ(first.states_explored, second.states_explored);
    EXPECT_EQ(first.states_pruned, second.states_pruned);
    EXPECT_EQ(first.antichain_size, second.antichain_size);
  }
}

TEST(ParallelFrontierTest, IntersectBitIdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(BaseSeed() ^ 0x94d049bb133111ebULL);
  RandomAutomatonOptions options;
  options.num_states = 8;
  options.num_symbols = 2;
  options.transition_density = 1.3;
  for (int iteration = 0; iteration < 150; ++iteration) {
    RPQI_FUZZ_SCOPE(iteration);
    Nfa a = RandomNfa(rng, options);
    Nfa b = RandomNfa(rng, options);
    Nfa serial = Intersect(a, b, 1);
    for (int threads : {2, 4}) {
      ExpectSameNfa(serial, Intersect(a, b, threads));
    }
  }
}

}  // namespace
}  // namespace rpqi
