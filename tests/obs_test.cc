// Tests for the observability layer: the metrics registry (cross-thread
// counter sums, gauges, histograms, snapshot deltas, NDJSON emission) and the
// stage-span tracer (record shape, parent links, counter attribution, notes,
// and the disabled-by-default contract).

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {
namespace obs {
namespace {

// The registry is process-global and other tests bump shared counters, so
// every assertion here is on deltas between snapshots, never on absolutes.

TEST(MetricsTest, CounterAddsAreVisibleInSnapshots) {
  static const Counter counter("obs_test.basic");
  MetricsSnapshot before = TakeMetricsSnapshot();
  counter.Add(5);
  counter.Increment();
  counter.Add(0);  // documented no-op
  MetricsSnapshot delta = TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("obs_test.basic"), 6);
  EXPECT_EQ(delta.CounterValue("obs_test.never_registered"), 0);
}

TEST(MetricsTest, CountersSumAcrossThreads) {
  static const Counter counter("obs_test.cross_thread");
  MetricsSnapshot before = TakeMetricsSnapshot();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  MetricsSnapshot delta = TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("obs_test.cross_thread"),
            int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, ExitedThreadCountsAreRetained) {
  static const Counter counter("obs_test.retired");
  MetricsSnapshot before = TakeMetricsSnapshot();
  // The thread's shard is recycled on exit; its tally must survive into
  // later snapshots (the "retired" aggregation).
  std::thread worker([&] { counter.Add(17); });
  worker.join();
  std::thread second([&] { counter.Add(3); });
  second.join();
  MetricsSnapshot delta = TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("obs_test.retired"), 20);
}

TEST(MetricsTest, GaugeKeepsLastWrite) {
  static const Gauge gauge("obs_test.gauge");
  gauge.Set(41);
  gauge.Set(42);
  EXPECT_EQ(TakeMetricsSnapshot().GaugeValue("obs_test.gauge"), 42);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  static const Histogram histogram("obs_test.histogram");
  MetricsSnapshot before = TakeMetricsSnapshot();
  histogram.RecordUs(0);
  histogram.RecordUs(1);
  histogram.RecordUs(1000);
  MetricsSnapshot delta = TakeMetricsSnapshot().DeltaSince(before);
  const auto it = delta.histograms().find("obs_test.histogram");
  ASSERT_NE(it, delta.histograms().end());
  EXPECT_EQ(it->second.count, 3);
  EXPECT_EQ(it->second.sum_us, 1001);
  int64_t bucket_total = 0;
  for (int64_t bucket : it->second.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, 3);
}

TEST(MetricsTest, ParallelForCountersSumExactly) {
  static const Counter counter("obs_test.parallel_for");
  ThreadPool pool(4);
  MetricsSnapshot before = TakeMetricsSnapshot();
  constexpr int64_t kItems = 10000;
  pool.ParallelFor(kItems, [&](int64_t) { counter.Increment(); });
  MetricsSnapshot delta = TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("obs_test.parallel_for"), kItems);
}

TEST(MetricsTest, NdjsonContainsEveryKind) {
  static const Counter counter("obs_test.ndjson_counter");
  static const Gauge gauge("obs_test.ndjson_gauge");
  static const Histogram histogram("obs_test.ndjson_histogram");
  counter.Increment();
  gauge.Set(7);
  histogram.RecordUs(12);
  std::ostringstream out;
  TakeMetricsSnapshot().WriteNdjson(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"type\":\"counter\",\"name\":"
                      "\"obs_test.ndjson_counter\""),
            std::string::npos);
  EXPECT_NE(
      text.find("{\"type\":\"gauge\",\"name\":\"obs_test.ndjson_gauge\""),
      std::string::npos);
  EXPECT_NE(text.find("{\"type\":\"histogram\",\"name\":"
                      "\"obs_test.ndjson_histogram\""),
            std::string::npos);
  // NDJSON: every line is a complete JSON object.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(TraceTest, DisabledSpanEmitsNothing) {
  ASSERT_FALSE(Tracer::IsEnabled());
  std::ostringstream out;
  {
    Span span("obs_test.disabled");
    span.Note("ignored", 1);
  }
  EXPECT_TRUE(out.str().empty());
}

TEST(TraceTest, SpanRecordsNameDurationCountersAndNotes) {
  static const Counter counter("obs_test.span_counter");
  std::ostringstream out;
  Tracer::StartToStream(&out);
  {
    Span span("obs_test.outer");
    counter.Add(4);
    span.Note("answer", 42);
  }
  Tracer::Stop();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\":\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"dur_us\":"), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.span_counter\":4"), std::string::npos);
  EXPECT_NE(text.find("\"notes\":{\"answer\":42}"), std::string::npos);
}

TEST(TraceTest, NestedSpansLinkParentIds) {
  std::ostringstream out;
  Tracer::StartToStream(&out);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    Span outer("obs_test.parent");
    outer_id = outer.id();
    {
      Span inner("obs_test.child");
      inner_id = inner.id();
    }
  }
  Tracer::Stop();
  const std::string text = out.str();
  ASSERT_NE(outer_id, 0u);
  ASSERT_NE(inner_id, 0u);
  // The child closes (and is emitted) first, referencing the parent's id.
  EXPECT_NE(text.find("\"name\":\"obs_test.child\",\"id\":" +
                      std::to_string(inner_id) +
                      ",\"parent\":" + std::to_string(outer_id)),
            std::string::npos);
  EXPECT_NE(text.find("\"name\":\"obs_test.parent\",\"id\":" +
                      std::to_string(outer_id) + ",\"parent\":0"),
            std::string::npos);
  EXPECT_LT(text.find("obs_test.child"), text.find("obs_test.parent"));
}

TEST(TraceTest, OtherThreadsCountersAreNotAttributed) {
  static const Counter counter("obs_test.other_thread");
  std::ostringstream out;
  Tracer::StartToStream(&out);
  {
    Span span("obs_test.attribution");
    std::thread other([&] { counter.Add(100); });
    other.join();
  }
  Tracer::Stop();
  // The span only sees deltas from its own thread's shard.
  EXPECT_EQ(out.str().find("\"obs_test.other_thread\""), std::string::npos);
}

TEST(TraceTest, StartToFileFailsOnUnwritablePath) {
  EXPECT_FALSE(Tracer::StartToFile("/nonexistent-dir/trace.ndjson"));
  EXPECT_FALSE(Tracer::IsEnabled());
}

TEST(TraceTest, StopIsIdempotentAndDisables) {
  std::ostringstream out;
  Tracer::StartToStream(&out);
  EXPECT_TRUE(Tracer::IsEnabled());
  Tracer::Stop();
  EXPECT_FALSE(Tracer::IsEnabled());
  Tracer::Stop();  // second Stop must be harmless
  {
    Span span("obs_test.after_stop");
  }
  EXPECT_EQ(out.str().find("obs_test.after_stop"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace rpqi
