// Chaos soak for the serve path: a multithreaded Server::Serve run over
// thousands of mixed requests with seeded faults armed at every layer
// (snapshot I/O, plan cache, automata state allocation, worker stalls, queue
// bursts, transport truncation). The invariants are the robustness contract:
//
//   * every non-blank request line yields exactly one response line,
//   * every response is well-formed JSON with a structured status,
//   * the process neither crashes nor deadlocks (the test finishing is the
//     assertion; CI additionally runs this under ASan/UBSan and TSan),
//   * armed sites actually fired (the run exercised the error paths),
//   * after DisarmAll the server serves cleanly again (no poisoned state).
//
// Seed and volume come from RPQI_CHAOS_SEED / RPQI_CHAOS_REQUESTS so CI can
// sweep seeds; every decision is deterministic given the pair.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/socket.h"
#include "fault/fault.h"
#include "graphdb/columnar.h"
#include "graphdb/io.h"
#include "net/framing.h"
#include "net/tcp_server.h"
#include "obs/metrics.h"
#include "service/breaker.h"
#include "service/json.h"
#include "service/server.h"

namespace rpqi {
namespace service {
namespace {

/// Arms faults for the duration of one test; never leaks them.
struct FaultGuard {
  FaultGuard() { fault::DisarmAll(); }
  ~FaultGuard() { fault::DisarmAll(); }
};

std::string WriteTempGraph(const std::string& name, const std::string& text) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

/// Same graph, but compacted to the binary columnar format — reloads of this
/// file exercise the snapshot.mmap_open path of the loader.
std::string WriteTempColumnarGraph(const std::string& name,
                                   const std::string& text) {
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(text, &alphabet);
  RPQI_CHECK(db.ok());
  std::string path = testing::TempDir() + name;
  Status written =
      WriteColumnarFile(path, *db, alphabet, FingerprintGraphText(text));
  RPQI_CHECK(written.ok());
  return path;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoll(value);
}

/// splitmix64: the request mix must be deterministic per seed, with no
/// dependence on the standard library's RNG implementation.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string ChaosFaultSpec(int64_t seed) {
  std::string s = std::to_string(seed);
  return "snapshot.open=prob:0.2:" + s +
         ",snapshot.read=prob:0.1:" + s +
         ",snapshot.mmap_open=prob:0.15:" + s +
         ",snapshot.reload_swap=prob:0.1:" + s +
         ",graphdb.parse_io=prob:0.05:" + s +
         ",plan_cache.insert=prob:0.3:" + s +
         ",plan_cache.disk_io=prob:0.3:" + s +
         ",automata.determinize_state=prob:0.02:" + s +
         ",automata.materialize_state=prob:0.02:" + s +
         ",service.request_truncate=prob:0.02:" + s +
         ",service.queue_full=prob:0.02:" + s +
         ",worker_pool.task_start=prob:0.05:" + s + ";ms=1";
}

/// One deterministic request line. The mix covers every op, both graph
/// files, cache-friendly repeats, and malformed lines.
std::string MakeRequest(int id, uint64_t* rng, const std::string& db_a,
                        const std::string& db_b) {
  const char* queries[] = {"(a|b)* c", "a b", "a", "b* a", "(a^-)* b"};
  uint64_t draw = NextRandom(rng) % 100;
  std::string idstr = std::to_string(id);
  if (draw < 40) {
    return "{\"id\":" + idstr + ",\"op\":\"eval\",\"query\":\"" +
           queries[NextRandom(rng) % 5] + "\"}";
  }
  if (draw < 60) {
    return "{\"id\":" + idstr + ",\"op\":\"rewrite\",\"query\":\"" +
           queries[NextRandom(rng) % 5] +
           "\",\"views\":{\"v1\":\"a\",\"v2\":\"b\"}}";
  }
  if (draw < 70) {
    return "{\"id\":" + idstr +
           ",\"op\":\"answer\",\"mode\":\"oda\",\"objects\":3,"
           "\"query\":\"a\",\"views\":[{\"expr\":\"a\",\"assumption\":"
           "\"exact\",\"extension\":[[0,1],[1,2]]}],\"pairs\":[[0,1],[0,2]]}";
  }
  if (draw < 80) {
    return "{\"id\":" + idstr + ",\"op\":\"admin\",\"action\":\"reload\","
           "\"db\":\"" + (NextRandom(rng) % 2 == 0 ? db_a : db_b) + "\"}";
  }
  if (draw < 88) {
    return "{\"id\":" + idstr + ",\"op\":\"admin\",\"action\":\"stats\"}";
  }
  if (draw < 94) {
    return "{\"id\":" + idstr + ",\"op\":\"nonsense\"}";
  }
  // Malformed JSON: must come back as a structured invalid_request, id null.
  return "{\"id\":" + idstr + ",\"op\":\"eval\",";
}

TEST(ChaosTest, SoakServeLoopUnderSeededFaults) {
  FaultGuard guard;
  int64_t seed = EnvInt("RPQI_CHAOS_SEED", 1);
  // Modest by default so the tier-1 suite stays fast; the CI chaos job sets
  // RPQI_CHAOS_REQUESTS=2000 (and sweeps seeds) for the full soak.
  int64_t num_requests = EnvInt("RPQI_CHAOS_REQUESTS", 600);

  std::string db_a = WriteTempGraph("chaos_a.txt", "a r b\nb r c\nc s a\n");
  // One of the two reload targets is a binary columnar snapshot, so the soak
  // alternates the text parse path and the mmap path under the same faults.
  std::string db_b = WriteTempColumnarGraph("chaos_b.rpqicol", "a r b\nb s c\n");

  ServerOptions options;
  options.threads = 4;
  options.admission.queue_depth = 256;
  options.initial_db_path = db_a;
  // Persistent plan cache on, so the soak drives the disk save/load path
  // (and its plan_cache.disk_io fault) alongside the in-memory cache.
  options.plan_cache_dir = testing::TempDir();
  // Breaker on with a high threshold: exercised by the fault mix but rarely
  // tripping, so the request mix stays rich. Dedicated breaker tests pin the
  // state machine itself.
  options.breaker_failure_threshold = 50;
  options.breaker_cooldown_ms = 1;
  // One in-loop retry: transient reload faults often recover in-request.
  options.reload_retry.attempts = 2;
  Server server(options);
  ASSERT_TRUE(server.Init().ok());

  // Arm after Init so the initial load cannot fail the setup.
  ASSERT_TRUE(fault::Configure(ChaosFaultSpec(seed)).ok());

  uint64_t rng = static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 1;
  std::string input;
  for (int id = 0; id < num_requests; ++id) {
    input += MakeRequest(id, &rng, db_a, db_b);
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());

  // Requests in == responses out, every one well-formed with a known status.
  std::istringstream responses(out.str());
  std::string line;
  int64_t num_responses = 0;
  int64_t num_ok = 0;
  int64_t num_error = 0;
  while (std::getline(responses, line)) {
    ++num_responses;
    StatusOr<Json> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << "unparseable response: " << line;
    const Json* status = parsed->Find("status");
    ASSERT_NE(status, nullptr) << line;
    if (status->string_value() == "ok") {
      ++num_ok;
    } else {
      ASSERT_EQ(status->string_value(), "error") << line;
      const Json* code = parsed->Find("code");
      ASSERT_NE(code, nullptr) << line;
      ++num_error;
    }
  }
  EXPECT_EQ(num_responses, num_requests);
  // The mix always contains healthy eval repeats, so some must succeed, and
  // always contains malformed lines, so some must fail.
  EXPECT_GT(num_ok, 0);
  EXPECT_GT(num_error, 0);

  // The soak actually drove the fault layer: sites on deterministic paths
  // tallied hits, and the probabilistic policies fired somewhere.
  EXPECT_GT(fault::HitCount("plan_cache.insert"), 0);
  EXPECT_GT(fault::HitCount("plan_cache.disk_io"), 0);
  EXPECT_GT(fault::HitCount("snapshot.open"), 0);
  EXPECT_GT(fault::HitCount("snapshot.mmap_open"), 0);
  EXPECT_GT(fault::HitCount("service.request_truncate"), 0);
  EXPECT_GT(fault::HitCount("service.queue_full"), 0);
  EXPECT_GT(fault::HitCount("worker_pool.task_start"), 0);
  obs::MetricsSnapshot snapshot = obs::TakeMetricsSnapshot();
  EXPECT_GT(snapshot.CounterValue("fault.fires"), 0);
  EXPECT_GE(snapshot.CounterValue("fault.hits"),
            snapshot.CounterValue("fault.fires"));

  // Recovery: with faults disarmed the same server serves cleanly again —
  // nothing the chaos run did may poison later traffic.
  fault::DisarmAll();
  std::string reload = server.HandleLine(
      "{\"id\":\"r\",\"op\":\"admin\",\"action\":\"reload\",\"db\":\"" +
      db_a + "\"}");
  EXPECT_NE(reload.find("\"status\":\"ok\""), std::string::npos) << reload;
  std::string eval =
      server.HandleLine("{\"id\":\"e\",\"op\":\"eval\",\"query\":\"a\"}");
  EXPECT_NE(eval.find("\"status\":\"ok\""), std::string::npos) << eval;
  std::string stats = server.HandleLine(
      "{\"id\":\"s\",\"op\":\"admin\",\"action\":\"stats\"}");
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;
}

TEST(ChaosTest, TornBinarySnapshotDegradesToUnavailable) {
  // A binary snapshot truncated mid-write (or caught mid-atomic-replace) must
  // come back as a structured `unavailable` reload error — the checksummed
  // parse rejects it long before any pointer-cast view could read torn bytes
  // — and the previous snapshot must keep serving. Restoring the full file
  // then reloads cleanly.
  FaultGuard guard;
  std::string db_text = WriteTempGraph("chaos_torn.txt", "a r b\nb r c\n");
  std::string db_bin =
      WriteTempColumnarGraph("chaos_torn.rpqicol", "a r b\nb r c\n");
  std::string full_bytes;
  {
    std::ifstream in(db_bin, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full_bytes = buffer.str();
  }

  ServerOptions options;
  options.initial_db_path = db_text;
  options.reload_retry.attempts = 1;  // no in-loop retry: surface the tear
  Server server(options);
  ASSERT_TRUE(server.Init().ok());

  // Truncation lengths that retain the full magic (the loader only takes the
  // columnar path once all 8 magic bytes are present; shorter prefixes fall
  // to the text parser and get a plain invalid_request). All must be
  // structured `unavailable` failures with the old snapshot still answering.
  for (size_t keep : {size_t{8}, size_t{100}, size_t{199},
                      full_bytes.size() / 2, full_bytes.size() - 1}) {
    std::ofstream out(db_bin, std::ios::binary | std::ios::trunc);
    out << full_bytes.substr(0, keep);
    out.close();
    std::string reload = server.HandleLine(
        "{\"id\":1,\"op\":\"admin\",\"action\":\"reload\",\"db\":\"" + db_bin +
        "\"}");
    EXPECT_NE(reload.find("\"status\":\"error\""), std::string::npos)
        << "keep=" << keep << ": " << reload;
    EXPECT_NE(reload.find("\"code\":\"unavailable\""), std::string::npos)
        << "keep=" << keep << ": " << reload;
    std::string eval =
        server.HandleLine("{\"id\":2,\"op\":\"eval\",\"query\":\"r\"}");
    EXPECT_NE(eval.find("\"status\":\"ok\""), std::string::npos) << eval;
  }

  // A prefix shorter than the magic is sniffed as text; the binary header
  // bytes fail the text parse as a structured invalid_request — never UB.
  {
    std::ofstream out(db_bin, std::ios::binary | std::ios::trunc);
    out << full_bytes.substr(0, 7);
    out.close();
    std::string reload = server.HandleLine(
        "{\"id\":5,\"op\":\"admin\",\"action\":\"reload\",\"db\":\"" + db_bin +
        "\"}");
    EXPECT_NE(reload.find("\"status\":\"error\""), std::string::npos) << reload;
    EXPECT_NE(reload.find("\"code\":\"invalid_request\""), std::string::npos)
        << reload;
  }

  // Bit flips in an intact-length file: checksum rejection, same contract.
  for (size_t at : {size_t{24}, size_t{208}, full_bytes.size() - 3}) {
    std::string corrupt = full_bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    std::ofstream out(db_bin, std::ios::binary | std::ios::trunc);
    out << corrupt;
    out.close();
    std::string reload = server.HandleLine(
        "{\"id\":3,\"op\":\"admin\",\"action\":\"reload\",\"db\":\"" + db_bin +
        "\"}");
    EXPECT_NE(reload.find("\"status\":\"error\""), std::string::npos)
        << "flip at " << at << ": " << reload;
  }

  // The complete file reloads fine afterwards.
  {
    std::ofstream out(db_bin, std::ios::binary | std::ios::trunc);
    out << full_bytes;
  }
  std::string reload = server.HandleLine(
      "{\"id\":4,\"op\":\"admin\",\"action\":\"reload\",\"db\":\"" + db_bin +
      "\"}");
  EXPECT_NE(reload.find("\"status\":\"ok\""), std::string::npos) << reload;
}

TEST(ChaosTest, EveryRequestStallsStillDrainCleanly) {
  FaultGuard guard;
  std::string db = WriteTempGraph("chaos_stall.txt", "a r b\n");
  ASSERT_TRUE(
      fault::Configure("worker_pool.task_start=every:1;ms=2").ok());
  ServerOptions options;
  options.threads = 2;
  options.initial_db_path = db;
  Server server(options);
  ASSERT_TRUE(server.Init().ok());
  std::string input;
  for (int id = 0; id < 50; ++id) {
    input += "{\"id\":" + std::to_string(id) +
             ",\"op\":\"eval\",\"query\":\"a\"}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());
  std::istringstream responses(out.str());
  std::string line;
  int count = 0;
  while (std::getline(responses, line)) ++count;
  EXPECT_EQ(count, 50);
  EXPECT_EQ(fault::FireCount("worker_pool.task_start"), 50);
}

/// Sends `bytes` fully over a blocking socket.
void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }
}

/// Reads whole lines from `fd` until `want` lines arrive or `timeout_ms`
/// passes; appends to `*lines`.
void ReadLines(int fd, size_t want, std::vector<std::string>* lines,
               int timeout_ms) {
  net::LineFramer framer(size_t{1} << 20);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (lines->size() < want &&
         std::chrono::steady_clock::now() < deadline) {
    std::vector<PollEvent> events(1);
    events[0].fd = fd;
    events[0].want_read = true;
    StatusOr<int> ready = PollSockets(&events, 100);
    if (!ready.ok() || !events[0].readable) continue;
    char buf[8192];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return;
    }
    framer.Feed(buf, static_cast<size_t>(n), lines);
  }
}

// The transport-layer soak: real loopback sockets with the net.* fault sites
// armed. net.read fired skips a read round (level-triggered poll re-reports
// the data), net.write fired truncates a flush to one byte (forced short
// write) — both are delays, never corruption, so the invariant is exact:
// every request line sent gets exactly one well-formed response line.
TEST(ChaosTest, TcpSoakUnderReadWriteFaults) {
  FaultGuard guard;
  int64_t seed = EnvInt("RPQI_CHAOS_SEED", 1);
  std::string db = WriteTempGraph("chaos_tcp.txt", "a r b\nb r c\nc s a\n");
  ServerOptions options;
  options.threads = 2;
  options.initial_db_path = db;
  Server server(options);
  ASSERT_TRUE(server.Init().ok());
  net::TcpTransport transport(&server, {});
  ASSERT_TRUE(transport.Listen().ok());
  std::thread serve_thread([&transport] {
    Status served = transport.Serve();
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  std::string spec = "net.read=prob:0.3:" + std::to_string(seed) +
                     ",net.write=prob:0.5:" + std::to_string(seed);
  ASSERT_TRUE(fault::Configure(spec).ok());

  constexpr int kClients = 2;
  constexpr int kRequestsPerClient = 150;
  std::vector<std::thread> clients;
  std::atomic<int> well_formed{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      StatusOr<UniqueFd> fd = ConnectTcp("127.0.0.1", transport.port());
      ASSERT_TRUE(fd.ok()) << fd.status().ToString();
      uint64_t rng = static_cast<uint64_t>(seed + c) * 0x9e3779b97f4a7c15ULL;
      for (int id = 0; id < kRequestsPerClient; ++id) {
        std::string line;
        uint64_t draw = NextRandom(&rng) % 10;
        std::string idstr = std::to_string(c * kRequestsPerClient + id);
        if (draw < 7) {
          line = "{\"id\":" + idstr + ",\"op\":\"eval\",\"query\":\"a b\"}";
        } else if (draw < 9) {
          line = "{\"id\":" + idstr + ",\"op\":\"admin\","
                 "\"action\":\"stats\"}";
        } else {
          line = "{\"id\":" + idstr + ",\"op\":\"eval\",";  // malformed
        }
        SendAll(fd->get(), line + "\n");
      }
      std::vector<std::string> lines;
      ReadLines(fd->get(), kRequestsPerClient, &lines, 30000);
      EXPECT_EQ(lines.size(), size_t{kRequestsPerClient})
          << "client " << c << " lost responses under net faults";
      for (const std::string& line : lines) {
        StatusOr<Json> parsed = ParseJson(line);
        ASSERT_TRUE(parsed.ok()) << "torn response: " << line;
        const Json* status = parsed->Find("status");
        ASSERT_NE(status, nullptr) << line;
        well_formed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(well_formed.load(std::memory_order_relaxed),
            kClients * kRequestsPerClient);
  // The armed sites actually saw traffic and fired.
  EXPECT_GT(fault::HitCount("net.read"), 0);
  EXPECT_GT(fault::HitCount("net.write"), 0);
  EXPECT_GT(fault::FireCount("net.read") + fault::FireCount("net.write"), 0);

  // Recovery: disarmed, a fresh connection round-trips immediately.
  fault::DisarmAll();
  StatusOr<UniqueFd> fd = ConnectTcp("127.0.0.1", transport.port());
  ASSERT_TRUE(fd.ok());
  SendAll(fd->get(), "{\"id\":\"x\",\"op\":\"eval\",\"query\":\"a\"}\n");
  std::vector<std::string> lines;
  ReadLines(fd->get(), 1, &lines, 5000);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos) << lines[0];

  transport.RequestShutdown();
  serve_thread.join();
}

// net.accept fired drops the freshly accepted socket: the client sees an
// immediate EOF, never a half-served connection, and the listener keeps
// accepting afterwards.
TEST(ChaosTest, TcpAcceptFaultDropsOneConnectionCleanly) {
  FaultGuard guard;
  std::string db = WriteTempGraph("chaos_tcp_accept.txt", "a r b\n");
  ServerOptions options;
  options.initial_db_path = db;
  Server server(options);
  ASSERT_TRUE(server.Init().ok());
  net::TcpTransport transport(&server, {});
  ASSERT_TRUE(transport.Listen().ok());
  std::thread serve_thread([&transport] {
    Status served = transport.Serve();
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  ASSERT_TRUE(fault::Configure("net.accept=once").ok());
  {
    StatusOr<UniqueFd> dropped = ConnectTcp("127.0.0.1", transport.port());
    ASSERT_TRUE(dropped.ok());
    SendAll(dropped->get(), "{\"id\":1,\"op\":\"eval\",\"query\":\"a\"}\n");
    std::vector<std::string> lines;
    ReadLines(dropped->get(), 1, &lines, 3000);
    EXPECT_TRUE(lines.empty()) << "dropped connection still answered";
  }
  EXPECT_EQ(fault::FireCount("net.accept"), 1);

  // The one-shot is spent: the next connection is served normally.
  StatusOr<UniqueFd> fd = ConnectTcp("127.0.0.1", transport.port());
  ASSERT_TRUE(fd.ok());
  SendAll(fd->get(), "{\"id\":2,\"op\":\"eval\",\"query\":\"a\"}\n");
  std::vector<std::string> lines;
  ReadLines(fd->get(), 1, &lines, 5000);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos) << lines[0];

  transport.RequestShutdown();
  serve_thread.join();
}

TEST(ChaosTest, BreakerSnapshotRacesRecordersWithoutTearing) {
  // Pins the off-lock stats read: Snapshot() used to copy `entries_` without
  // holding the breaker mutex, racing concurrent ShouldReject/Record* writers
  // — a std::map data race (UB; TSan flags it, and a rebalancing insert can
  // derail an unlocked tree walk entirely). The CI chaos job runs this test
  // under TSan; here the assertions are on snapshot integrity: every entry
  // well-formed, counters non-negative, no crash.
  std::atomic<int64_t> fake_ms{0};
  service::CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_ms = 2;
  options.now_ms = [&fake_ms] {
    return fake_ms.load(std::memory_order_relaxed);
  };
  service::CircuitBreaker breaker(options);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&breaker, &fake_ms, t] {
      const std::string key = "op_" + std::to_string(t % 2);
      uint64_t rng = static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ULL + 7;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        if (breaker.ShouldReject(key)) {
          fake_ms.fetch_add(1, std::memory_order_relaxed);  // advance cooldown
          continue;
        }
        if (NextRandom(&rng) % 3 == 0) {
          breaker.RecordInternalError(key);
        } else {
          breaker.RecordSuccess(key);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&breaker, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<service::CircuitBreaker::KeyState> snapshot =
            breaker.Snapshot();
        EXPECT_LE(snapshot.size(), 2u);
        for (const service::CircuitBreaker::KeyState& key_state : snapshot) {
          EXPECT_TRUE(key_state.state == "closed" ||
                      key_state.state == "open" ||
                      key_state.state == "half_open")
              << key_state.state;
          EXPECT_GE(key_state.consecutive_failures, 0);
          EXPECT_GE(key_state.trips, 0);
          EXPECT_GE(key_state.rejected, 0);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kWriters].join();
  threads[kWriters + 1].join();

  // Errors were injected well past the threshold, so both keys tripped at
  // least once and the trips survived into the final snapshot.
  int64_t total_trips = 0;
  for (const service::CircuitBreaker::KeyState& key_state :
       breaker.Snapshot()) {
    total_trips += key_state.trips;
  }
  EXPECT_GT(total_trips, 0);
}

}  // namespace
}  // namespace service
}  // namespace rpqi
