// Tests for src/fault: policy determinism (every/once/prob), spec parsing
// and its whole-spec atomicity, disabled-path inertness, tally/obs mirroring,
// and the site catalog that tools/rpqi_lint.py checks every RPQI_FAULT_*
// site in src/ against.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <vector>

#include "base/status.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rpqi {
namespace fault {
namespace {

// Every injection site in src/, one entry per RPQI_FAULT_POINT /
// RPQI_FAULT_FIRED / RPQI_FAULT_STALL occurrence. tools/rpqi_lint.py
// (fault-site rule) fails the build when a site exists in code but not here,
// or vice versa — this catalog is the documentation of record.
const char* const kKnownSites[] = {
    "automata.determinize_state",
    "automata.materialize_state",
    "graphdb.compact_write",
    "graphdb.parse_io",
    "net.accept",
    "net.read",
    "net.write",
    "plan_cache.disk_io",
    "plan_cache.insert",
    "service.queue_full",
    "service.request_truncate",
    "snapshot.mmap_open",
    "snapshot.open",
    "snapshot.read",
    "snapshot.reload_swap",
    "thread_pool.spawn",
    "worker_pool.spawn",
    "worker_pool.task_start",
};

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

// The macros live in functions so each test exercises the real function-local
// slot caching, not a shared slot.
bool TestSiteFired() { return RPQI_FAULT_FIRED("test.site"); }

Status TestPoint() {
  RPQI_FAULT_POINT("test.point",
                   Status::ResourceExhausted("injected by test"));
  return Status::Ok();
}

void TestStall() { RPQI_FAULT_STALL("test.stall"); }

TEST_F(FaultTest, DisabledLayerIsInert) {
  EXPECT_FALSE(Enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(TestSiteFired());
    EXPECT_TRUE(TestPoint().ok());
  }
  // Disabled hits tally nothing: the fast path is the single atomic load.
  EXPECT_EQ(HitCount("test.site"), 0);
  EXPECT_EQ(HitCount("test.point"), 0);
}

TEST_F(FaultTest, EveryNFiresOnEveryNthHit) {
  ASSERT_TRUE(Configure("test.site=every:3").ok());
  EXPECT_TRUE(Enabled());
  std::vector<int> fired_at;
  for (int hit = 1; hit <= 9; ++hit) {
    if (TestSiteFired()) fired_at.push_back(hit);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(HitCount("test.site"), 9);
  EXPECT_EQ(FireCount("test.site"), 3);
}

TEST_F(FaultTest, OnceFiresExactlyOnceOnTheNthHit) {
  ASSERT_TRUE(Configure("test.site=once:2").ok());
  EXPECT_FALSE(TestSiteFired());
  EXPECT_TRUE(TestSiteFired());
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(TestSiteFired());
  EXPECT_EQ(FireCount("test.site"), 1);

  // Bare `once` means the first hit.
  ASSERT_TRUE(Configure("test.other=once").ok());
  EXPECT_EQ(FireCount("test.other"), 0);
}

TEST_F(FaultTest, StatusPointReturnsTheInjectedStatus) {
  ASSERT_TRUE(Configure("test.point=once").ok());
  Status injected = TestPoint();
  EXPECT_EQ(injected.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(injected.message(), "injected by test");
  EXPECT_TRUE(TestPoint().ok());  // one-shot spent
}

TEST_F(FaultTest, ProbIsDeterministicGivenSeed) {
  auto run = [&](const std::string& spec) {
    DisarmAll();
    EXPECT_TRUE(Configure(spec).ok());
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(TestSiteFired());
    return pattern;
  };
  std::vector<bool> first = run("test.site=prob:0.3:42");
  std::vector<bool> second = run("test.site=prob:0.3:42");
  EXPECT_EQ(first, second);
  // A different seed gives a different stream (overwhelmingly likely for
  // 200 draws at p=0.3; this is deterministic, not statistical, since both
  // streams are fixed by the seeds).
  std::vector<bool> other = run("test.site=prob:0.3:43");
  EXPECT_NE(first, other);

  EXPECT_TRUE(std::none_of(run("test.site=prob:0:1").begin(),
                           run("test.site=prob:0:1").end(),
                           [](bool b) { return b; }));
  std::vector<bool> always = run("test.site=prob:1:1");
  EXPECT_TRUE(std::all_of(always.begin(), always.end(),
                          [](bool b) { return b; }));
}

TEST_F(FaultTest, RearmingResetsPolicyStateButNotTallies) {
  ASSERT_TRUE(Configure("test.site=once").ok());
  EXPECT_TRUE(TestSiteFired());
  ASSERT_TRUE(Configure("test.site=once").ok());  // re-arm: one-shot refilled
  EXPECT_TRUE(TestSiteFired());
  EXPECT_EQ(HitCount("test.site"), 2);
  EXPECT_EQ(FireCount("test.site"), 2);
}

TEST_F(FaultTest, DisarmAllResetsEverything) {
  ASSERT_TRUE(Configure("test.site=every:1").ok());
  EXPECT_TRUE(TestSiteFired());
  DisarmAll();
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(TestSiteFired());
  EXPECT_EQ(HitCount("test.site"), 0);
  EXPECT_EQ(FireCount("test.site"), 0);
}

TEST_F(FaultTest, StallSleepsTheConfiguredDuration) {
  ASSERT_TRUE(Configure("test.stall=every:1;ms=10").ok());
  auto start = std::chrono::steady_clock::now();
  TestStall();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 10);
  EXPECT_EQ(FireCount("test.stall"), 1);
}

TEST_F(FaultTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_FALSE(Configure("no_policy").ok());
  EXPECT_FALSE(Configure("site=unknown:1").ok());
  EXPECT_FALSE(Configure("site=every:0").ok());
  EXPECT_FALSE(Configure("site=every:x").ok());
  EXPECT_FALSE(Configure("site=prob:1.5").ok());
  EXPECT_FALSE(Configure("site=prob:-0.1").ok());
  EXPECT_FALSE(Configure("Bad.Name=once").ok());
  EXPECT_FALSE(Configure("site=once;ms=x").ok());
  EXPECT_FALSE(Configure("=once").ok());
}

TEST_F(FaultTest, ConfigureIsAtomicAcrossTheWholeSpec) {
  // One bad entry rejects the whole spec: nothing is armed, the layer stays
  // disabled, so a typo cannot half-arm a chaos run.
  EXPECT_FALSE(Configure("test.site=once,bogus").ok());
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(TestSiteFired());
}

TEST_F(FaultTest, ConfigureIsAdditiveAcrossCalls) {
  ASSERT_TRUE(Configure("test.site=every:1").ok());
  ASSERT_TRUE(Configure("test.point=once").ok());
  EXPECT_TRUE(TestSiteFired());
  EXPECT_FALSE(TestPoint().ok());
}

TEST_F(FaultTest, TalliesMirrorIntoObsCounters) {
  ASSERT_TRUE(Configure("test.site=every:2").ok());
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  for (int i = 0; i < 4; ++i) TestSiteFired();
  obs::MetricsSnapshot delta =
      obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("fault.hit.test.site"), 4);
  EXPECT_EQ(delta.CounterValue("fault.fired.test.site"), 2);
  EXPECT_EQ(delta.CounterValue("fault.hits"), 4);
  EXPECT_EQ(delta.CounterValue("fault.fires"), 2);
}

TEST_F(FaultTest, ListSitesReportsArmedPolicyAndTallies) {
  ASSERT_TRUE(Configure("test.site=every:2").ok());
  TestSiteFired();
  TestSiteFired();
  bool found = false;
  for (const SiteInfo& site : ListSites()) {
    if (site.name != "test.site") continue;
    found = true;
    EXPECT_TRUE(site.armed);
    EXPECT_EQ(site.policy, "every:2");
    EXPECT_EQ(site.hits, 2);
    EXPECT_EQ(site.fires, 1);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Site catalog

TEST_F(FaultTest, CatalogSiteNamesFollowTheGrammar) {
  for (const char* name : kKnownSites) {
    for (const char* p = name; *p != '\0'; ++p) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(*p)) ||
                  std::isdigit(static_cast<unsigned char>(*p)) || *p == '_' ||
                  *p == '.')
          << "site '" << name << "' breaks the [a-z0-9_.]+ grammar";
    }
  }
}

TEST_F(FaultTest, EveryCatalogSiteIsConfigurable) {
  for (const char* name : kKnownSites) {
    EXPECT_TRUE(Configure(std::string(name) + "=once").ok()) << name;
  }
  std::vector<SiteInfo> sites = ListSites();
  for (const char* name : kKnownSites) {
    bool found = false;
    for (const SiteInfo& site : sites) found |= site.name == name;
    EXPECT_TRUE(found) << name;
  }
}

}  // namespace
}  // namespace fault
}  // namespace rpqi
