#include <gtest/gtest.h>

#include <random>

#include "automata/ops.h"
#include "automata/random.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "rpq/satisfaction.h"
#include "workload/regex_gen.h"

namespace rpqi {
namespace {

struct TestAlphabet {
  SignedAlphabet alphabet;
  TestAlphabet() {
    alphabet.AddRelation("p");
    alphabet.AddRelation("q");
  }
  Nfa Compile(const std::string& text) {
    return MustCompileRegex(MustParseRegex(text), alphabet);
  }
};

// Σ± symbol ids for relations p and q.
const int kP = 0, kPInv = 1, kQ = 2, kQInv = 3;

TEST(WordSatisfiesTest, PlainMembershipImpliesSatisfaction) {
  TestAlphabet t;
  Nfa query = t.Compile("p q p");
  EXPECT_TRUE(WordSatisfies(query, {kP, kQ, kP}));
  EXPECT_FALSE(WordSatisfies(query, {kP, kQ}));
  EXPECT_FALSE(WordSatisfies(query, {kQ, kP, kP}));
}

TEST(WordSatisfiesTest, SatisfactionBeyondMembership) {
  TestAlphabet t;
  // The paper (Section 2) notes w may satisfy E with w ∉ L(E): the evaluation
  // may walk back and forth on the line database. p p⁻ p conforms to a
  // semipath of the single-edge word p: go forward, back, forward.
  Nfa query = t.Compile("p p^- p");
  EXPECT_TRUE(WordSatisfies(query, {kP}));
  EXPECT_FALSE(Accepts(query, {kP}));

  // q q⁻ in the query matches a q-edge traversed forward then backward —
  // including the "wrong-way" edge denoted by q⁻ in the word.
  Nfa query2 = t.Compile("p q q^- p");
  EXPECT_TRUE(WordSatisfies(query2, {kP, kQ, kQInv, kP}));
  // But the detour needs an actual q-edge: a pure p-word does not satisfy it.
  EXPECT_FALSE(WordSatisfies(query2, {kP, kP}));
  // A p p⁻ detour can reuse the p-edge just traversed.
  EXPECT_TRUE(WordSatisfies(t.Compile("p p p^- p"), {kP, kP}));
}

TEST(WordSatisfiesTest, InverseWordSemantics) {
  TestAlphabet t;
  // The word p⁻ denotes an edge pointing backwards; query p⁻ matches it,
  // query p does not.
  Nfa inverse_query = t.Compile("p^-");
  EXPECT_TRUE(WordSatisfies(inverse_query, {kPInv}));
  EXPECT_FALSE(WordSatisfies(inverse_query, {kP}));
  Nfa forward_query = t.Compile("p");
  EXPECT_FALSE(WordSatisfies(forward_query, {kPInv}));
}

TEST(WordSatisfiesTest, EmptyWordAndEpsilonQuery) {
  TestAlphabet t;
  EXPECT_TRUE(WordSatisfies(t.Compile("%eps"), {}));
  EXPECT_FALSE(WordSatisfies(t.Compile("p"), {}));
  // ε query on a nonempty word: endpoints differ, no semipath of length 0.
  EXPECT_FALSE(WordSatisfies(t.Compile("%eps"), {kP}));
  // But p p⁻-style round trips satisfy queries ending where they started,
  // never connecting distinct endpoints with ε.
  EXPECT_TRUE(WordSatisfies(t.Compile("p p^- p"), {kP}));
}

TEST(WordSatisfiesTest, MatchesLineDbReferenceOnRandomInputs) {
  std::mt19937_64 rng(31);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 7;
  regex_options.inverse_probability = 0.4;
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  alphabet.AddRelation("q");
  int satisfied = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RegexPtr regex = RandomRegex(rng, regex_options);
    Nfa query = MustCompileRegex(regex, alphabet);
    for (int i = 0; i < 15; ++i) {
      std::vector<int> word = RandomWord(rng, 4, i % 6);
      bool via_automaton = WordSatisfies(query, word);
      bool via_line_db = WordSatisfiesViaLineDb(query, word);
      EXPECT_EQ(via_automaton, via_line_db) << "trial " << trial;
      if (via_automaton) ++satisfied;
    }
  }
  EXPECT_GT(satisfied, 0) << "sweep never exercised the positive case";
}

TEST(WordSatisfiesTest, InverseFreeQueriesReduceToMembership) {
  // For inverse-free query AND inverse-free word, satisfaction coincides
  // with plain language membership (the evaluation cannot go backwards).
  std::mt19937_64 rng(37);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 6;
  regex_options.inverse_probability = 0.0;
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  alphabet.AddRelation("q");
  for (int trial = 0; trial < 40; ++trial) {
    Nfa query = MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    for (int i = 0; i < 10; ++i) {
      std::vector<int> raw = RandomWord(rng, 2, i % 6);
      std::vector<int> word;
      for (int s : raw) word.push_back(2 * s);  // forward symbols only
      EXPECT_EQ(WordSatisfies(query, word), Accepts(query, word));
    }
  }
}

TEST(RpqiContainmentTest, LanguageContainmentImpliesQueryContainment) {
  TestAlphabet t;
  EXPECT_TRUE(RpqiContained(t.Compile("p p"), t.Compile("p* ")));
  EXPECT_FALSE(RpqiContained(t.Compile("p*"), t.Compile("p p")));
}

TEST(RpqiContainmentTest, SemanticContainmentBeyondLanguages) {
  TestAlphabet t;
  // L(p) and L(p p⁻ p) are incomparable as languages, yet as queries
  // p ⊑ p p⁻ p: any p-edge x→y admits the semipath x→y→x→y. The converse
  // fails: p p⁻ p can relate x to a node reachable only via a shared
  // p-successor (x→y, u→y, u→z), which p cannot.
  EXPECT_TRUE(RpqiContained(t.Compile("p"), t.Compile("p p^- p")));
  EXPECT_FALSE(RpqiContained(t.Compile("p p^- p"), t.Compile("p")));
  EXPECT_FALSE(RpqiEquivalent(t.Compile("p p^- p"), t.Compile("p")));
}

TEST(RpqiContainmentTest, UnionAndDetours) {
  TestAlphabet t;
  // Re-walking the final edge back and forth is always available.
  EXPECT_TRUE(RpqiContained(t.Compile("p p"), t.Compile("p p p^- p")));
  EXPECT_FALSE(RpqiContained(t.Compile("p p p^- p"), t.Compile("p p")));
  EXPECT_TRUE(RpqiContained(t.Compile("p"), t.Compile("p | q")));
  EXPECT_FALSE(RpqiContained(t.Compile("p | q"), t.Compile("p")));
  EXPECT_FALSE(RpqiEquivalent(t.Compile("p^-"), t.Compile("p")));
}

TEST(RpqiContainmentTest, StarOfInverses) {
  TestAlphabet t;
  EXPECT_TRUE(RpqiContained(t.Compile("(p^-)* "), t.Compile("(p | p^-)*")));
  EXPECT_FALSE(RpqiContained(t.Compile("(p | p^-)*"), t.Compile("(p^-)*")));
}

TEST(InverseWordTest, ReversesAndFlips) {
  EXPECT_EQ(InverseWord({kP, kQInv, kP}),
            (std::vector<int>{kPInv, kQ, kPInv}));
  EXPECT_EQ(InverseWord({}), (std::vector<int>{}));
}

TEST(InverseAutomatonTest, AcceptsExactlyInverseWords) {
  TestAlphabet t;
  Nfa nfa = t.Compile("p q^- (p | q)");
  Nfa inverse = InverseAutomaton(nfa);
  std::mt19937_64 rng(41);
  for (int i = 0; i < 80; ++i) {
    std::vector<int> word = RandomWord(rng, 4, i % 5);
    EXPECT_EQ(Accepts(inverse, word), Accepts(nfa, InverseWord(word)));
  }
}

}  // namespace
}  // namespace rpqi
