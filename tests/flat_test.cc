// Flat compiled-plan automata (automata/flat.h, DESIGN.md §16): CompileFlat
// structure, the RPQIPLAN1 wire format (round-trip, corrupt-every-byte
// rejection, version/magic skew), ValidateFlatNfa as the deserialization
// admission gate, and the differential guarantee the eval rewire rests on —
// flat-plan evaluation is bit-identical to a direct Nfa product BFS.
#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "analysis/validate.h"
#include "automata/flat.h"
#include "automata/nfa.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "graphdb/eval.h"
#include "graphdb/graph.h"
#include "obs/metrics.h"
#include "rpq/alphabet.h"
#include "workload/graph_gen.h"

namespace rpqi {
namespace {

/// Independent reference: product BFS straight over the Nfa's per-state
/// transition vectors (ε removed up front), row-scan adjacency only. This is
/// the pre-flat evaluator, re-stated; the fuzz tests below hold the FlatNfa
/// path to byte-for-byte agreement with it.
std::vector<std::pair<int, int>> ReferenceAllPairs(const GraphDb& db,
                                                   const Nfa& input) {
  const Nfa nfa =
      input.HasEpsilonTransitions() ? RemoveEpsilon(input) : input;
  const int num_states = nfa.NumStates();
  std::vector<std::pair<int, int>> answer;
  for (int start = 0; start < db.NumNodes(); ++start) {
    std::vector<char> visited(
        static_cast<size_t>(db.NumNodes()) * num_states, 0);
    std::vector<std::pair<int, int>> stack;
    auto visit = [&](int state, int node) {
      size_t index = static_cast<size_t>(node) * num_states + state;
      if (!visited[index]) {
        visited[index] = 1;
        stack.push_back({state, node});
      }
    };
    for (int s = 0; s < num_states; ++s) {
      if (nfa.IsInitial(s)) visit(s, start);
    }
    while (!stack.empty()) {
      auto [state, node] = stack.back();
      stack.pop_back();
      for (const Nfa::Transition& t : nfa.TransitionsFrom(state)) {
        int relation = SignedAlphabet::RelationOfSymbol(t.symbol);
        if (SignedAlphabet::IsInverseSymbol(t.symbol)) {
          for (const GraphDb::Edge& e : db.InEdges(node)) {
            if (e.relation == relation) visit(t.to, e.to);
          }
        } else {
          for (const GraphDb::Edge& e : db.OutEdges(node)) {
            if (e.relation == relation) visit(t.to, e.to);
          }
        }
      }
    }
    for (int node = 0; node < db.NumNodes(); ++node) {
      for (int s = 0; s < num_states; ++s) {
        if (nfa.IsAccepting(s) &&
            visited[static_cast<size_t>(node) * num_states + s]) {
          answer.push_back({start, node});
          break;
        }
      }
    }
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

TEST(FlatNfaTest, CompileSortsDeduplicatesAndIndexes) {
  Nfa nfa(3);
  int a = nfa.AddState(), b = nfa.AddState(), c = nfa.AddState();
  nfa.SetInitial(a);
  nfa.SetAccepting(c);
  // Deliberately unsorted with a duplicate.
  nfa.AddTransition(a, 2, c);
  nfa.AddTransition(a, 0, b);
  nfa.AddTransition(a, 2, b);
  nfa.AddTransition(a, 0, b);  // duplicate
  nfa.AddTransition(b, 1, c);

  FlatNfa flat = CompileFlat(nfa);
  EXPECT_EQ(flat.NumStates(), 3);
  EXPECT_EQ(flat.num_symbols(), 3);
  EXPECT_EQ(flat.NumEdges(), 4);  // duplicate collapsed
  ASSERT_EQ(flat.Edges(a).size(), 3u);
  EXPECT_TRUE(std::is_sorted(flat.Edges(a).begin(), flat.Edges(a).end()));
  EXPECT_EQ(flat.Edges(c).size(), 0u);

  // EdgesFor: exact per-symbol sub-spans via binary search.
  ASSERT_EQ(flat.EdgesFor(a, 2).size(), 2u);
  EXPECT_EQ(flat.EdgesFor(a, 2)[0].to, b);
  EXPECT_EQ(flat.EdgesFor(a, 2)[1].to, c);
  EXPECT_EQ(flat.EdgesFor(a, 1).size(), 0u);
  EXPECT_EQ(flat.EdgesFor(b, 1).size(), 1u);

  ASSERT_EQ(flat.InitialStates().size(), 1u);
  EXPECT_EQ(flat.InitialStates()[0], a);
  EXPECT_TRUE(flat.IsInitial(a));
  EXPECT_FALSE(flat.IsInitial(b));
  EXPECT_TRUE(flat.IsAccepting(c));
  EXPECT_FALSE(flat.IsAccepting(a));
}

TEST(FlatNfaTest, CompilePreAppliesEpsilonClosure) {
  Nfa nfa(2);
  int a = nfa.AddState(), b = nfa.AddState(), c = nfa.AddState();
  nfa.SetInitial(a);
  nfa.SetAccepting(c);
  nfa.AddTransition(a, kEpsilon, b);
  nfa.AddTransition(b, 1, c);

  FlatNfa flat = CompileFlat(nfa);
  // No ε edges survive, and a's span reaches c through the folded closure.
  for (int s = 0; s < flat.NumStates(); ++s) {
    for (const FlatNfa::Edge& e : flat.Edges(s)) EXPECT_GE(e.symbol, 0);
  }
  bool a_reaches_c_on_1 = false;
  for (const FlatNfa::Edge& e : flat.EdgesFor(0, 1)) {
    if (flat.IsAccepting(e.to)) a_reaches_c_on_1 = true;
  }
  EXPECT_TRUE(a_reaches_c_on_1);
}

TEST(FlatNfaTest, EmptyAutomatonCompiles) {
  Nfa nfa(2);
  FlatNfa flat = CompileFlat(nfa);
  EXPECT_EQ(flat.NumStates(), 0);
  EXPECT_EQ(flat.NumEdges(), 0);
  EXPECT_EQ(flat.InitialStates().size(), 0u);
  EXPECT_FALSE(flat.HasAcceptingState());
  EXPECT_TRUE(ValidateFlatNfa(flat).ok());
}

TEST(FlatNfaTest, CompiledPlansAlwaysValidate) {
  std::mt19937_64 rng(401);
  RandomAutomatonOptions options;
  for (int round = 0; round < 50; ++round) {
    options.num_states = 1 + static_cast<int>(rng() % 12);
    options.num_symbols = 1 + static_cast<int>(rng() % 6);
    options.transition_density = 0.2 + (rng() % 20) / 10.0;
    Nfa nfa = RandomNfa(rng, options);
    // Half the rounds get extra ε transitions so both CompileFlat branches
    // (with and without RemoveEpsilon) are exercised.
    if (round % 2 == 0 && nfa.NumStates() >= 2) {
      for (int i = 0; i < 3; ++i) {
        nfa.AddTransition(
            static_cast<int>(rng() % nfa.NumStates()), kEpsilon,
            static_cast<int>(rng() % nfa.NumStates()));
      }
    }
    FlatNfa flat = CompileFlat(nfa);
    EXPECT_TRUE(ValidateFlatNfa(flat).ok()) << "round " << round;
    EXPECT_TRUE(ValidateFlatNfa(flat, flat.num_symbols()).ok());
    EXPECT_FALSE(ValidateFlatNfa(flat, flat.num_symbols() + 1).ok());
  }
}

// The differential fuzz the eval rewire rests on: flat-plan evaluation must
// agree bit-for-bit with the direct-Nfa reference, on both adjacency paths
// (row scan and the CSR label index).
TEST(FlatEvalDifferentialTest, FlatMatchesNfaReferenceOnRandomInputs) {
  std::mt19937_64 rng(977);
  for (int round = 0; round < 40; ++round) {
    RandomGraphOptions graph_options;
    graph_options.num_nodes = 2 + static_cast<int>(rng() % 14);
    graph_options.num_relations = 1 + static_cast<int>(rng() % 3);
    graph_options.average_out_degree = 0.5 + (rng() % 30) / 10.0;
    GraphDb db = RandomGraph(rng, graph_options);

    RandomAutomatonOptions nfa_options;
    nfa_options.num_states = 1 + static_cast<int>(rng() % 8);
    // Signed alphabet: two symbols (forward/inverse) per relation.
    nfa_options.num_symbols = 2 * graph_options.num_relations;
    nfa_options.transition_density = 0.3 + (rng() % 15) / 10.0;
    Nfa query = RandomNfa(rng, nfa_options);
    if (round % 3 == 0 && query.NumStates() >= 2) {
      query.AddTransition(0, kEpsilon, query.NumStates() - 1);
    }

    std::vector<std::pair<int, int>> expected = ReferenceAllPairs(db, query);
    const FlatNfa plan = CompileFlat(query);

    // Scan path.
    StatusOr<std::vector<std::pair<int, int>>> scan =
        EvalRpqiAllPairsWithBudget(db, plan, nullptr);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(*scan, expected) << "scan path, round " << round;

    // CSR path over the same rows.
    db.BuildLabelIndex(graph_options.num_relations);
    ASSERT_TRUE(db.has_label_index());
    StatusOr<std::vector<std::pair<int, int>>> csr =
        EvalRpqiAllPairsWithBudget(db, plan, nullptr);
    ASSERT_TRUE(csr.ok());
    EXPECT_EQ(*csr, expected) << "csr path, round " << round;

    // And the Nfa convenience overload (which compiles internally) agrees.
    EXPECT_EQ(EvalRpqiAllPairs(db, query), expected);
  }
}

// A decoded plan evaluates identically to the plan that was encoded: the
// serialize → deserialize → eval loop (the persistent plan cache's warm
// path) introduces no drift.
TEST(FlatEvalDifferentialTest, DecodedPlanEvaluatesIdentically) {
  std::mt19937_64 rng(31337);
  for (int round = 0; round < 20; ++round) {
    RandomGraphOptions graph_options;
    graph_options.num_nodes = 2 + static_cast<int>(rng() % 10);
    graph_options.num_relations = 1 + static_cast<int>(rng() % 2);
    GraphDb db = RandomGraph(rng, graph_options);
    RandomAutomatonOptions nfa_options;
    nfa_options.num_states = 1 + static_cast<int>(rng() % 6);
    nfa_options.num_symbols = 2 * graph_options.num_relations;
    Nfa query = RandomNfa(rng, nfa_options);

    FlatPlan plan;
    plan.nfa = CompileFlat(query);
    plan.tag = "round-" + std::to_string(round);
    StatusOr<FlatPlan> decoded = DecodeFlatPlan(EncodeFlatPlan(plan), "test");
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->tag, plan.tag);

    StatusOr<std::vector<std::pair<int, int>>> before =
        EvalRpqiAllPairsWithBudget(db, plan.nfa, nullptr);
    StatusOr<std::vector<std::pair<int, int>>> after =
        EvalRpqiAllPairsWithBudget(db, decoded->nfa, nullptr);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after) << "round " << round;
  }
}

// Pins the satellite bugfix: per-query setup (ε-closure + flat compile) runs
// once per query, never once per source node. The counter is the tripwire —
// if the all-pairs sweep ever regresses to compiling inside the per-source
// loop, the delta scales with the node count and this fails.
TEST(FlatEvalDifferentialTest, AllPairsCompilesOncePerQuery) {
  std::mt19937_64 rng(55);
  RandomAutomatonOptions nfa_options;
  nfa_options.num_states = 5;
  nfa_options.num_symbols = 2;
  Nfa query = RandomNfa(rng, nfa_options);
  for (int num_nodes : {4, 40}) {
    RandomGraphOptions graph_options;
    graph_options.num_nodes = num_nodes;
    graph_options.num_relations = 1;
    GraphDb db = RandomGraph(rng, graph_options);
    obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
    StatusOr<std::vector<std::pair<int, int>>> result =
        EvalRpqiAllPairsWithBudget(db, query, nullptr);
    ASSERT_TRUE(result.ok());
    obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
    EXPECT_EQ(delta.CounterValue("eval.plan_compiles"), 1)
        << "plan compiles must not scale with the " << num_nodes
        << "-node sweep";
    EXPECT_EQ(delta.CounterValue("eval.bfs_runs"), num_nodes);
  }
}

FlatPlan SamplePlan() {
  Nfa nfa(4);
  int a = nfa.AddState(), b = nfa.AddState(), c = nfa.AddState();
  nfa.SetInitial(a);
  nfa.SetAccepting(b);
  nfa.SetAccepting(c);
  nfa.AddTransition(a, 0, b);
  nfa.AddTransition(a, 3, c);
  nfa.AddTransition(b, 1, c);
  nfa.AddTransition(c, 2, a);
  FlatPlan plan;
  plan.nfa = CompileFlat(nfa);
  plan.tag = "eval|0123456789abcdef|(a b)*";
  plan.has_answers = true;
  plan.answers = {{0, 1}, {0, 2}, {2, 2}};
  return plan;
}

TEST(FlatPlanFormatTest, RoundTripPreservesEveryPart) {
  FlatPlan plan = SamplePlan();
  std::string encoded = EncodeFlatPlan(plan);
  EXPECT_TRUE(IsFlatPlan(encoded));
  EXPECT_EQ(static_cast<int64_t>(encoded.size()), EncodedFlatPlanBytes(plan));

  StatusOr<FlatPlan> decoded = DecodeFlatPlan(encoded, "roundtrip");
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->tag, plan.tag);
  EXPECT_TRUE(decoded->has_answers);
  EXPECT_EQ(decoded->answers, plan.answers);
  EXPECT_EQ(decoded->nfa.num_symbols(), plan.nfa.num_symbols());
  EXPECT_EQ(decoded->nfa.offsets(), plan.nfa.offsets());
  EXPECT_EQ(decoded->nfa.edges(), plan.nfa.edges());
  EXPECT_EQ(decoded->nfa.initial_words(), plan.nfa.initial_words());
  EXPECT_EQ(decoded->nfa.accepting_words(), plan.nfa.accepting_words());
  EXPECT_EQ(decoded->nfa.initial_list(), plan.nfa.initial_list());

  // Deterministic bytes: encoding the decoded plan reproduces the file.
  EXPECT_EQ(EncodeFlatPlan(*decoded), encoded);
}

TEST(FlatPlanFormatTest, AnswerlessPlanRoundTrips) {
  FlatPlan plan = SamplePlan();
  plan.has_answers = false;
  plan.answers.clear();
  plan.tag.clear();
  StatusOr<FlatPlan> decoded = DecodeFlatPlan(EncodeFlatPlan(plan), "bare");
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_FALSE(decoded->has_answers);
  EXPECT_TRUE(decoded->answers.empty());
  EXPECT_TRUE(decoded->tag.empty());
}

// The exhaustive corruption sweep the persistent cache's torn/corrupt-file
// guarantee rests on: flipping any single byte of a valid plan file — header,
// payload, or padding — must be rejected (checksum flips surface as a
// stored/computed mismatch; everything else as a checksum or structure
// failure). No flip may decode successfully.
TEST(FlatPlanFormatTest, EveryByteFlipIsRejected) {
  std::string encoded = EncodeFlatPlan(SamplePlan());
  for (size_t at = 0; at < encoded.size(); ++at) {
    std::string corrupt = encoded;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
    StatusOr<FlatPlan> decoded = DecodeFlatPlan(corrupt, "flip");
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << at << " went undetected";
  }
}

TEST(FlatPlanFormatTest, EveryTruncationIsRejected) {
  std::string encoded = EncodeFlatPlan(SamplePlan());
  for (size_t keep = 0; keep < encoded.size(); ++keep) {
    StatusOr<FlatPlan> decoded =
        DecodeFlatPlan(encoded.substr(0, keep), "truncated");
    EXPECT_FALSE(decoded.ok()) << "truncation to " << keep
                               << " bytes went undetected";
  }
}

TEST(FlatPlanFormatTest, ForeignMagicAndVersionAreRejectedWithDiagnostics) {
  std::string encoded = EncodeFlatPlan(SamplePlan());

  std::string wrong_magic = encoded;
  wrong_magic[0] = 'X';
  StatusOr<FlatPlan> bad = DecodeFlatPlan(wrong_magic, "magic");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("magic"), std::string::npos);

  // A future version bump must be refused by this build, with the version
  // named, even though only the version field differs.
  std::string future = encoded;
  future[12] = 2;  // version field follows the 12-byte magic
  bad = DecodeFlatPlan(future, "future");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("version"), std::string::npos);
}

TEST(ValidateFlatNfaTest, RejectsBrokenInvariants) {
  FlatNfa good = SamplePlan().nfa;
  auto rebuild = [&](auto mutate) {
    std::vector<uint32_t> offsets = good.offsets();
    std::vector<FlatNfa::Edge> edges = good.edges();
    std::vector<uint64_t> initial_words = good.initial_words();
    std::vector<uint64_t> accepting_words = good.accepting_words();
    std::vector<int32_t> initial_list = good.initial_list();
    int num_symbols = good.num_symbols();
    mutate(&num_symbols, &offsets, &edges, &initial_words, &accepting_words,
           &initial_list);
    return FlatNfa::FromPartsUnchecked(
        num_symbols, std::move(offsets), std::move(edges),
        std::move(initial_words), std::move(accepting_words),
        std::move(initial_list));
  };
  ASSERT_TRUE(ValidateFlatNfa(good).ok());

  // Non-monotone offsets.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto* offsets, auto*, auto*,
                                          auto*, auto*) {
                 (*offsets)[1] = (*offsets)[2] + 1;
               })).ok());
  // offsets.back() disagrees with the edge count.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto* offsets, auto*, auto*,
                                          auto*, auto*) {
                 offsets->back() += 1;
               })).ok());
  // Out-of-alphabet symbol.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int* num_symbols, auto*, auto* edges,
                                          auto*, auto*, auto*) {
                 (*edges)[0].symbol = *num_symbols;
               })).ok());
  // ε is banned in the flat form.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto*, auto* edges, auto*,
                                          auto*, auto*) {
                 (*edges)[0].symbol = -1;
               })).ok());
  // Edge target outside the state space.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto*, auto* edges, auto*,
                                          auto*, auto*) {
                 edges->front().to = 99;
               })).ok());
  // Unsorted span (swap two edges of the same state).
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto*, auto* edges, auto*,
                                          auto*, auto*) {
                 std::swap((*edges)[0], (*edges)[1]);
               })).ok());
  // Stray bit beyond the last state in the accepting bitset.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto*, auto*, auto*,
                                          auto* accepting, auto*) {
                 accepting->back() |= uint64_t{1} << 63;
               })).ok());
  // Initial list disagrees with the initial bitset.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto*, auto*, auto*, auto*,
                                          auto* initial_list) {
                 initial_list->push_back(2);
               })).ok());
  // Wrong bitset word count.
  EXPECT_FALSE(ValidateFlatNfa(rebuild([](int*, auto*, auto*,
                                          auto* initial_words, auto*, auto*) {
                 initial_words->push_back(0);
               })).ok());
}

}  // namespace
}  // namespace rpqi
