// Tests for src/net: the incremental line framer, the TCP transport end to
// end over real loopback sockets (framing under chunked sends, connection
// shedding, oversized-line rejection, cross-connection shutdown drain), the
// batch execution path's snapshot-pin/plan-lookup amortization, and
// multi-tenant namespace routing, views, and quotas.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/socket.h"
#include "net/framing.h"
#include "net/loadgen.h"
#include "net/tcp_server.h"
#include "obs/metrics.h"
#include "service/json.h"
#include "service/server.h"

namespace rpqi {
namespace net {
namespace {

using service::Json;
using service::ParseJson;

// ---------------------------------------------------------------------------
// framing.h

TEST(LineFramerTest, SplitsCompleteLines) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  const char* data = "one\ntwo\nthree";
  EXPECT_EQ(framer.Feed(data, std::strlen(data), &lines), 0);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_TRUE(framer.has_partial());
  EXPECT_EQ(framer.pending_bytes(), 5u);
  EXPECT_EQ(framer.Feed("!\n", 2, &lines), 0);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "three!");
  EXPECT_FALSE(framer.has_partial());
}

TEST(LineFramerTest, ReassemblesByteAtATime) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  const std::string input = "{\"id\":1}\n";
  for (char c : input) framer.Feed(&c, 1, &lines);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"id\":1}");
}

TEST(LineFramerTest, StripsTrailingCarriageReturn) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  const char* data = "hello\r\n";
  framer.Feed(data, std::strlen(data), &lines);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "hello");
}

TEST(LineFramerTest, OversizedLineIsDiscardedAndFramingRecovers) {
  LineFramer framer(8);
  std::vector<std::string> lines;
  const char* data = "0123456789abcdef\nok\n";
  EXPECT_EQ(framer.Feed(data, std::strlen(data), &lines), 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
}

TEST(LineFramerTest, OversizedLineSpanningManyFeedsCountsOnce) {
  LineFramer framer(8);
  std::vector<std::string> lines;
  int oversized = 0;
  for (int i = 0; i < 10; ++i) oversized += framer.Feed("xxxxx", 5, &lines);
  EXPECT_EQ(oversized, 1);  // rejected when first crossing the limit
  oversized += framer.Feed("tail\nok\n", 8, &lines);
  EXPECT_EQ(oversized, 1);  // the discard consumed the rest silently
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
  EXPECT_EQ(framer.Feed("yyyyyyyyyyyy", 12, &lines), 1);  // next line counts
}

TEST(LineFramerTest, TakePartialReturnsUnterminatedTail) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  framer.Feed("no newline", 10, &lines);
  EXPECT_TRUE(lines.empty());
  ASSERT_TRUE(framer.has_partial());
  EXPECT_EQ(framer.TakePartial(), "no newline");
  EXPECT_FALSE(framer.has_partial());
}

// ---------------------------------------------------------------------------
// Batch execution (no sockets): amortization and quota accounting.

std::string WriteTempFile(const std::string& name, const std::string& text) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

service::ServerOptions BaseOptions(const std::string& db_path) {
  service::ServerOptions options;
  options.threads = 2;
  options.initial_db_path = db_path;
  return options;
}

Json MustParse(const std::string& text) {
  StatusOr<Json> parsed = ParseJson(text);
  return std::move(parsed).value();
}

std::string StatusOf(const std::string& response) {
  Json parsed = MustParse(response);
  const Json* status = parsed.Find("status");
  return status != nullptr && status->is_string() ? status->string_value()
                                                  : "<none>";
}

int64_t AnswerCountOf(const std::string& response) {
  Json parsed = MustParse(response);
  const Json* answers = parsed.Find("answers");
  if (answers == nullptr || !answers->is_array()) return -1;
  return static_cast<int64_t>(answers->array().size());
}

std::string ErrorCodeOf(const std::string& response) {
  Json parsed = MustParse(response);
  const Json* code = parsed.Find("code");
  return code != nullptr && code->is_string() ? code->string_value()
                                              : "<none>";
}

TEST(BatchTest, SharesSnapshotPinsAndPlanLookups) {
  std::string db = WriteTempFile("net_batch_graph.txt", "a r b\nb r c\n");
  service::Server server(BaseOptions(db));
  ASSERT_TRUE(server.Init().ok());
  std::vector<std::string> lines = {
      R"({"id":1,"op":"eval","query":"r"})",
      R"({"id":2,"op":"eval","query":"r"})",
      R"({"id":3,"op":"eval","query":"r r"})",
  };
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  auto batch = server.ParseBatch(lines);
  EXPECT_FALSE(service::Server::RequestsShutdown(*batch));
  std::vector<std::string> responses = server.ExecuteBatch(batch.get());
  ASSERT_EQ(responses.size(), 3u);
  for (const std::string& response : responses) {
    EXPECT_EQ(StatusOf(response), "ok") << response;
  }
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  // Three requests against one store: the snapshot is pinned once, the two
  // later requests reuse the batch's pin.
  EXPECT_EQ(delta.CounterValue("service.batch.snapshot_pins_saved"), 2);
  // Request 2 reuses request 1's plan resolution through the batch context.
  EXPECT_GE(delta.CounterValue("service.batch.plan_lookups_saved"), 1);
  EXPECT_EQ(delta.CounterValue("service.batches"), 1);
  // The id=2 response reports the batch-context plan as a cache hit.
  const Json* cache = MustParse(responses[1]).Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->string_value(), "hit");
}

TEST(BatchTest, BatchResponsesMatchHandleLine) {
  std::string db = WriteTempFile("net_batch_diff_graph.txt", "a r b\n");
  service::Server server(BaseOptions(db));
  ASSERT_TRUE(server.Init().ok());
  std::vector<std::string> lines = {
      R"({"id":1,"op":"eval","query":"r"})",
      R"({"id":2,"op":"eval","query":"r^-"})",
      R"({"id":3,"op":"bogus"})",
      "not json",
  };
  // Warm the plan cache so the singleton path also reports cache hits; the
  // batch path then must be field-for-field identical (modulo timing).
  service::Server reference(BaseOptions(db));
  ASSERT_TRUE(reference.Init().ok());
  std::vector<std::string> expected;
  for (const std::string& line : lines) {
    reference.HandleLine(line);  // warm
  }
  for (const std::string& line : lines) {
    expected.push_back(reference.HandleLine(line));
  }
  auto warm = server.ParseBatch(lines);
  server.ExecuteBatch(warm.get());
  auto batch = server.ParseBatch(lines);
  std::vector<std::string> responses = server.ExecuteBatch(batch.get());
  ASSERT_EQ(responses.size(), expected.size());
  // Timing and counters legitimately differ (the batch path reports its own
  // amortization counters); everything else must match field for field.
  auto strip_varying = [](const std::string& response) {
    Json parsed = MustParse(response);
    service::JsonObject kept;
    for (const auto& [key, value] : parsed.object()) {
      if (key != "us" && key != "counters") kept.emplace_back(key, value);
    }
    return Json::Obj(kept).Dump();
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(strip_varying(responses[i]), strip_varying(expected[i]))
        << "line " << i;
  }
}

TEST(BatchTest, RejectBatchAnswersEveryEntry) {
  std::string db = WriteTempFile("net_reject_graph.txt", "a r b\n");
  service::Server server(BaseOptions(db));
  ASSERT_TRUE(server.Init().ok());
  std::vector<std::string> lines = {
      R"({"id":7,"op":"eval","query":"r"})",
      "not json",
  };
  auto batch = server.ParseBatch(lines);
  std::vector<std::string> responses =
      server.RejectBatch(batch.get(), "overloaded", "queue full");
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ErrorCodeOf(responses[0]), "overloaded");
  Json first = MustParse(responses[0]);
  ASSERT_NE(first.Find("id"), nullptr);
  EXPECT_EQ(first.Find("id")->int_value(), 7);
  // The unparseable line keeps its invalid_request response, not overloaded.
  EXPECT_EQ(ErrorCodeOf(responses[1]), "invalid_request");
}

// ---------------------------------------------------------------------------
// Namespaces: routing, per-namespace views, quotas, scoped admin.

TEST(NamespaceTest, RequestsRouteToTheirNamespaceSnapshot) {
  std::string default_db = WriteTempFile("net_ns_default.txt", "a r b\n");
  std::string tenant_db =
      WriteTempFile("net_ns_tenant.txt", "a r b\nb r c\nc r d\n");
  service::ServerOptions options = BaseOptions(default_db);
  service::NamespaceOptions ns;
  ns.name = "tenant";
  ns.db_path = tenant_db;
  options.namespaces.push_back(ns);
  service::Server server(options);
  ASSERT_TRUE(server.Init().ok());

  std::string plain = server.HandleLine(R"({"id":1,"op":"eval","query":"r"})");
  std::string scoped =
      server.HandleLine(R"({"id":2,"op":"eval","query":"r","ns":"tenant"})");
  EXPECT_EQ(StatusOf(plain), "ok");
  EXPECT_EQ(StatusOf(scoped), "ok");
  EXPECT_EQ(AnswerCountOf(plain), 1);
  EXPECT_EQ(AnswerCountOf(scoped), 3);

  std::string unknown =
      server.HandleLine(R"({"id":3,"op":"eval","query":"r","ns":"nope"})");
  EXPECT_EQ(ErrorCodeOf(unknown), "invalid_request");
}

TEST(NamespaceTest, ViewsFileSuppliesRewriteDefaults) {
  std::string db = WriteTempFile("net_ns_views_db.txt", "a r b\nb s c\n");
  std::string views = WriteTempFile("net_ns_views.txt",
                                    "# tenant views\nvr=r\nvs=s\n");
  service::ServerOptions options = BaseOptions(db);
  service::NamespaceOptions ns;
  ns.name = "tenant";
  ns.db_path = db;
  ns.views_path = views;
  options.namespaces.push_back(ns);
  service::Server server(options);
  ASSERT_TRUE(server.Init().ok());

  std::string scoped = server.HandleLine(
      R"({"id":1,"op":"rewrite","query":"r s","ns":"tenant"})");
  EXPECT_EQ(StatusOf(scoped), "ok") << scoped;
  // Without the namespace there are no default views: invalid_request.
  std::string plain =
      server.HandleLine(R"({"id":2,"op":"rewrite","query":"r s"})");
  EXPECT_EQ(ErrorCodeOf(plain), "invalid_request");
  // An explicit views field overrides the namespace defaults.
  std::string override_views = server.HandleLine(
      R"({"id":3,"op":"rewrite","query":"r","views":{"w":"r"},"ns":"tenant"})");
  EXPECT_EQ(StatusOf(override_views), "ok") << override_views;
}

TEST(NamespaceTest, QuotaRejectsTheExcessRequestInOneBatch) {
  std::string db = WriteTempFile("net_ns_quota_db.txt", "a r b\n");
  service::ServerOptions options = BaseOptions(db);
  service::NamespaceOptions ns;
  ns.name = "t";
  ns.db_path = db;
  ns.max_inflight = 2;
  options.namespaces.push_back(ns);
  service::Server server(options);
  ASSERT_TRUE(server.Init().ok());

  // All three admitted at once (tickets are held for the whole batch), so the
  // third exceeds max_inflight=2 deterministically.
  std::vector<std::string> lines = {
      R"({"id":1,"op":"eval","query":"r","ns":"t"})",
      R"({"id":2,"op":"eval","query":"r","ns":"t"})",
      R"({"id":3,"op":"eval","query":"r","ns":"t"})",
  };
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  auto batch = server.ParseBatch(lines);
  std::vector<std::string> responses = server.ExecuteBatch(batch.get());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(StatusOf(responses[0]), "ok");
  EXPECT_EQ(StatusOf(responses[1]), "ok");
  EXPECT_EQ(ErrorCodeOf(responses[2]), "overloaded");
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("service.rejected.ns_quota"), 1);

  // Tickets released with the batch: the same burst admits 2 again.
  auto again = server.ParseBatch(lines);
  std::vector<std::string> retry = server.ExecuteBatch(again.get());
  EXPECT_EQ(StatusOf(retry[0]), "ok");
  EXPECT_EQ(ErrorCodeOf(retry[2]), "overloaded");
}

TEST(NamespaceTest, AdminReloadAndStatsAreScoped) {
  std::string default_db = WriteTempFile("net_ns_admin_default.txt", "a r b\n");
  std::string tenant_db = WriteTempFile("net_ns_admin_tenant.txt", "a r b\n");
  service::ServerOptions options = BaseOptions(default_db);
  service::NamespaceOptions ns;
  ns.name = "t";
  ns.db_path = tenant_db;
  ns.max_inflight = 4;
  options.namespaces.push_back(ns);
  service::Server server(options);
  ASSERT_TRUE(server.Init().ok());

  // Namespaced reload without "db" re-reads the configured path and bumps
  // only the tenant's snapshot version.
  {
    std::ofstream grow(tenant_db, std::ios::app);
    grow << "b r c\n";
  }
  std::string reloaded = server.HandleLine(
      R"({"id":1,"op":"admin","action":"reload","ns":"t"})");
  EXPECT_EQ(StatusOf(reloaded), "ok") << reloaded;
  Json reload_json = MustParse(reloaded);
  ASSERT_NE(reload_json.Find("ns"), nullptr);
  EXPECT_EQ(reload_json.Find("ns")->string_value(), "t");
  EXPECT_EQ(reload_json.Find("edges")->int_value(), 2);

  std::string scoped_count =
      server.HandleLine(R"({"id":2,"op":"eval","query":"r","ns":"t"})");
  EXPECT_EQ(AnswerCountOf(scoped_count), 2);
  std::string default_count =
      server.HandleLine(R"({"id":3,"op":"eval","query":"r"})");
  EXPECT_EQ(AnswerCountOf(default_count), 1);

  // Scoped stats carry the namespace block; global stats enumerate tenants.
  Json scoped_stats = MustParse(server.HandleLine(
      R"({"id":4,"op":"admin","action":"stats","ns":"t"})"));
  const Json* ns_block = scoped_stats.Find("namespace");
  ASSERT_NE(ns_block, nullptr);
  EXPECT_EQ(ns_block->Find("max_inflight")->int_value(), 4);
  Json global_stats = MustParse(
      server.HandleLine(R"({"id":5,"op":"admin","action":"stats"})"));
  const Json* all = global_stats.Find("namespaces");
  ASSERT_NE(all, nullptr);
  ASSERT_EQ(all->array().size(), 1u);
  EXPECT_EQ(all->array()[0].Find("name")->string_value(), "t");
}

TEST(NamespaceTest, InitRejectsDuplicatesAndMissingGraphs) {
  std::string db = WriteTempFile("net_ns_dup_db.txt", "a r b\n");
  service::ServerOptions options = BaseOptions(db);
  service::NamespaceOptions ns;
  ns.name = "t";
  ns.db_path = db;
  options.namespaces.push_back(ns);
  options.namespaces.push_back(ns);
  service::Server duplicate(options);
  EXPECT_FALSE(duplicate.Init().ok());

  options.namespaces.pop_back();
  options.namespaces[0].db_path = testing::TempDir() + "net_ns_missing.txt";
  service::Server missing(options);
  EXPECT_FALSE(missing.Init().ok());
}

// ---------------------------------------------------------------------------
// TCP transport end to end.

/// Blocking line-oriented test client over a connected socket.
class TestClient {
 public:
  static TestClient Connect(int port) {
    StatusOr<UniqueFd> fd = ConnectTcp("127.0.0.1", port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return TestClient(fd.ok() ? std::move(fd).value() : UniqueFd());
  }

  bool ok() const { return fd_.valid(); }
  int raw_fd() const { return fd_.get(); }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_.get(), bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<size_t>(n);
    }
  }

  void SendLine(const std::string& line) { Send(line + "\n"); }

  /// Reads until one full line is available; "" on EOF/timeout.
  std::string ReadLine(int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (lines_.empty()) {
      if (std::chrono::steady_clock::now() >= deadline) return "";
      std::vector<PollEvent> events(1);
      events[0].fd = fd_.get();
      events[0].want_read = true;
      StatusOr<int> ready = PollSockets(&events, 100);
      if (!ready.ok() || !events[0].readable) continue;
      char buf[4096];
      ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
      if (n == 0) return "";  // peer closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        return "";
      }
      framer_.Feed(buf, static_cast<size_t>(n), &lines_);
    }
    std::string line = std::move(lines_.front());
    lines_.erase(lines_.begin());
    return line;
  }

  void Close() { fd_.reset(); }

 private:
  explicit TestClient(UniqueFd fd) : fd_(std::move(fd)) {}
  UniqueFd fd_;
  LineFramer framer_{size_t{1} << 20};
  std::vector<std::string> lines_;
};

/// A transport + server running on a background thread for one test.
class TestServer {
 public:
  explicit TestServer(const service::ServerOptions& server_options,
                      TcpTransportOptions transport_options = {})
      : server_(server_options) {
    Status init = server_.Init();
    EXPECT_TRUE(init.ok()) << init.ToString();
    transport_options.port = 0;
    transport_ = std::make_unique<TcpTransport>(&server_, transport_options);
    Status listening = transport_->Listen();
    EXPECT_TRUE(listening.ok()) << listening.ToString();
    thread_ = std::thread([this] { serve_status_ = transport_->Serve(); });
  }

  ~TestServer() { Stop(); }

  int port() const { return transport_->port(); }

  void Stop() {
    if (thread_.joinable()) {
      transport_->RequestShutdown();
      thread_.join();
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    }
  }

  /// Waits for Serve() to return on its own (shutdown via the protocol).
  void Join() {
    if (thread_.joinable()) {
      thread_.join();
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    }
  }

 private:
  service::Server server_;
  std::unique_ptr<TcpTransport> transport_;
  std::thread thread_;
  Status serve_status_ = Status::Ok();
};

TEST(TcpTransportTest, ServesEvalOverLoopback) {
  std::string db = WriteTempFile("net_tcp_basic.txt", "a r b\nb r c\n");
  TestServer server(BaseOptions(db));
  TestClient client = TestClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  client.SendLine(R"({"id":1,"op":"eval","query":"r"})");
  std::string response = client.ReadLine();
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(StatusOf(response), "ok") << response;
  EXPECT_EQ(MustParse(response).Find("id")->int_value(), 1);
  EXPECT_EQ(AnswerCountOf(response), 2);
  client.SendLine(R"({"id":2,"op":"eval","query":"r r"})");
  std::string second = client.ReadLine();
  EXPECT_EQ(MustParse(second).Find("id")->int_value(), 2);
}

TEST(TcpTransportTest, ChunkedAndCoalescedSendsAreFramed) {
  std::string db = WriteTempFile("net_tcp_chunk.txt", "a r b\n");
  TestServer server(BaseOptions(db));
  TestClient client = TestClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  // A slow writer: the request arrives in 4 fragments.
  const std::string request = R"({"id":11,"op":"eval","query":"r"})" "\n";
  for (size_t i = 0; i < request.size(); i += 7) {
    client.Send(request.substr(i, 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::string response = client.ReadLine();
  EXPECT_EQ(StatusOf(response), "ok") << response;
  EXPECT_EQ(MustParse(response).Find("id")->int_value(), 11);
  // Two requests coalesced in one send still yield two responses (a batch).
  client.Send(
      "{\"id\":12,\"op\":\"eval\",\"query\":\"r\"}\n"
      "{\"id\":13,\"op\":\"eval\",\"query\":\"r\"}\n");
  std::string first = client.ReadLine();
  std::string second = client.ReadLine();
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  int64_t a = MustParse(first).Find("id")->int_value();
  int64_t b = MustParse(second).Find("id")->int_value();
  EXPECT_EQ(a + b, 25);
  EXPECT_NE(a, b);
}

TEST(TcpTransportTest, OversizedLineIsRejectedButConnectionSurvives) {
  std::string db = WriteTempFile("net_tcp_oversize.txt", "a r b\n");
  TcpTransportOptions transport_options;
  transport_options.max_line_bytes = 128;
  TestServer server(BaseOptions(db), transport_options);
  TestClient client = TestClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  client.Send(std::string(300, 'x') + "\n");
  std::string rejection = client.ReadLine();
  EXPECT_EQ(ErrorCodeOf(rejection), "invalid_request") << rejection;
  // Framing recovered: the next request on the same connection is served.
  client.SendLine(R"({"id":1,"op":"eval","query":"r"})");
  std::string response = client.ReadLine();
  EXPECT_EQ(StatusOf(response), "ok") << response;
}

TEST(TcpTransportTest, ConnectionLimitShedsWithStructuredError) {
  std::string db = WriteTempFile("net_tcp_shed.txt", "a r b\n");
  TcpTransportOptions transport_options;
  transport_options.max_connections = 1;
  TestServer server(BaseOptions(db), transport_options);
  TestClient first = TestClient::Connect(server.port());
  ASSERT_TRUE(first.ok());
  // Prove the first connection is established server-side before the second
  // connects (accept order is connection order on loopback).
  first.SendLine(R"({"id":1,"op":"eval","query":"r"})");
  ASSERT_EQ(StatusOf(first.ReadLine()), "ok");
  TestClient second = TestClient::Connect(server.port());
  ASSERT_TRUE(second.ok());
  std::string shed = second.ReadLine();
  EXPECT_EQ(ErrorCodeOf(shed), "overloaded") << shed;
  EXPECT_EQ(second.ReadLine(1000), "");  // then the socket closes
  // The first connection is unaffected.
  first.SendLine(R"({"id":2,"op":"eval","query":"r"})");
  EXPECT_EQ(StatusOf(first.ReadLine()), "ok");
}

TEST(TcpTransportTest, NamespaceRequestsWorkOverTcp) {
  std::string default_db = WriteTempFile("net_tcp_ns_default.txt", "a r b\n");
  std::string tenant_db =
      WriteTempFile("net_tcp_ns_tenant.txt", "a r b\nb r c\n");
  service::ServerOptions options = BaseOptions(default_db);
  service::NamespaceOptions ns;
  ns.name = "t";
  ns.db_path = tenant_db;
  options.namespaces.push_back(ns);
  TestServer server(options);
  TestClient client = TestClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  client.SendLine(R"({"id":1,"op":"eval","query":"r","ns":"t"})");
  std::string scoped = client.ReadLine();
  EXPECT_EQ(AnswerCountOf(scoped), 2) << scoped;
}

// Regression pin: an `admin shutdown` arriving on one connection must not
// truncate another connection's in-flight work — every admitted request on
// every connection is answered and flushed before Serve() returns.
TEST(TcpTransportTest, ShutdownOnOneConnectionDrainsTheOthers) {
  std::string db = WriteTempFile("net_tcp_drain.txt", "a r b\n");
  service::ServerOptions options = BaseOptions(db);
  options.threads = 2;
  TestServer server(options);
  TestClient worker = TestClient::Connect(server.port());
  TestClient admin = TestClient::Connect(server.port());
  ASSERT_TRUE(worker.ok());
  ASSERT_TRUE(admin.ok());
  // A slow request occupies connection A...
  worker.SendLine(R"({"id":"slow","op":"admin","action":"sleep","ms":400})");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...while connection B asks the server to shut down.
  admin.SendLine(R"({"id":"bye","op":"admin","action":"shutdown"})");
  std::string bye = admin.ReadLine();
  EXPECT_EQ(StatusOf(bye), "ok") << bye;
  // The drain must still deliver the slow request's response on A.
  std::string slow = worker.ReadLine();
  ASSERT_FALSE(slow.empty())
      << "shutdown on another connection truncated an in-flight request";
  EXPECT_EQ(StatusOf(slow), "ok") << slow;
  EXPECT_EQ(MustParse(slow).Find("slept_ms")->int_value(), 400);
  server.Join();  // Serve() returns on its own after the drain
}

TEST(TcpTransportTest, EofMidLineStillExecutesTheFragment) {
  std::string db = WriteTempFile("net_tcp_eof.txt", "a r b\n");
  TestServer server(BaseOptions(db));
  TestClient client = TestClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  // No trailing newline, then half-close the write side: the transport
  // mirrors stdio getline semantics and executes the fragment.
  client.Send(R"({"id":1,"op":"eval","query":"r"})");
  ::shutdown(client.raw_fd(), SHUT_WR);
  std::string response = client.ReadLine();
  EXPECT_EQ(StatusOf(response), "ok") << response;
}

// ---------------------------------------------------------------------------
// loadgen (closed loop against a real transport).

TEST(LoadGenTest, ClosedLoopCollectsLatencies) {
  std::string db = WriteTempFile("net_loadgen_db.txt", "");
  ASSERT_TRUE(EmitScenarioDb("modules", 7, db).ok());
  TestServer server(BaseOptions(db));
  LoadGenOptions options;
  options.port = server.port();
  options.qps = 200;
  options.duration_ms = 400;
  options.connections = 2;
  options.scenario = "modules";
  StatusOr<LoadGenReport> report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->sent, 0);
  EXPECT_GT(report->received, 0);
  EXPECT_GT(report->ok, 0);
  EXPECT_EQ(report->unanswered, 0);
  EXPECT_GE(report->p99_us, report->p50_us);
  std::string json = LoadGenReportJson(*report);
  Json parsed = MustParse(json);
  ASSERT_NE(parsed.Find("latency"), nullptr);
  EXPECT_NE(parsed.Find("latency")->Find("p50_us"), nullptr);
  EXPECT_NE(parsed.Find("latency")->Find("p99_us"), nullptr);
}

TEST(LoadGenTest, OpenLoopAndHardScenario) {
  std::string db = WriteTempFile("net_loadgen_hard_db.txt", "a r b\n");
  TestServer server(BaseOptions(db));
  LoadGenOptions options;
  options.port = server.port();
  options.qps = 100;
  options.duration_ms = 300;
  options.connections = 1;
  options.open_loop = true;
  options.scenario = "hard";
  StatusOr<LoadGenReport> report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->received, 0);
  EXPECT_EQ(report->mode, "open");
}

TEST(LoadGenTest, RejectsBadConfiguration) {
  LoadGenOptions options;
  options.port = 0;
  EXPECT_FALSE(RunLoadGen(options).ok());
  options.port = 1;
  options.scenario = "nope";
  EXPECT_FALSE(RunLoadGen(options).ok());
}

}  // namespace
}  // namespace net
}  // namespace rpqi
