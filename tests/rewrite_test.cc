#include <gtest/gtest.h>

#include <random>

#include "automata/ops.h"
#include "automata/random.h"
#include "graphdb/eval.h"
#include "regex/parser.h"
#include "rewrite/baseline_rpq.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/expansion.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "rpq/satisfaction.h"
#include "workload/regex_gen.h"
#include "workload/scenario.h"

namespace rpqi {
namespace {

struct RewriteCtx {
  SignedAlphabet alphabet;
  RewriteCtx() {
    alphabet.AddRelation("p");
    alphabet.AddRelation("q");
  }
  Nfa Compile(const std::string& text) {
    return MustCompileRegex(MustParseRegex(text), alphabet);
  }
};

/// All Σ_E± words up to the given length (k views ⇒ 2k symbols).
std::vector<std::vector<int>> AllViewWords(int num_views, int max_length) {
  std::vector<std::vector<int>> words = {{}};
  std::vector<std::vector<int>> frontier = {{}};
  for (int len = 1; len <= max_length; ++len) {
    std::vector<std::vector<int>> next;
    for (const auto& word : frontier) {
      for (int symbol = 0; symbol < 2 * num_views; ++symbol) {
        std::vector<int> extended = word;
        extended.push_back(symbol);
        next.push_back(extended);
        words.push_back(extended);
      }
    }
    frontier = std::move(next);
  }
  return words;
}

TEST(RewriterTest, SingleLetterViewsMirrorSatisfaction) {
  // With views va = p and vb = q, an e-word has exactly one expansion — the
  // matching Σ± word — so membership in the maximal rewriting must coincide
  // with word satisfaction of the query.
  RewriteCtx s;
  Nfa query = s.Compile("p (q^- p)*");
  std::vector<Nfa> views = {s.Compile("p"), s.Compile("q")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();

  for (const auto& view_word : AllViewWords(2, 4)) {
    // View symbol 2i ↦ Σ± symbol 2i here (va=p, vb=q share ids).
    std::vector<int> sigma_word = view_word;
    EXPECT_EQ(rewriting->dfa.Accepts(view_word),
              WordSatisfies(query, sigma_word))
        << "word size " << view_word.size();
  }
}

TEST(RewriterTest, MembershipOracleAgreesWithMaterializedRewriting) {
  RewriteCtx s;
  Nfa query = s.Compile("p q | q p^-");
  std::vector<Nfa> views = {s.Compile("p q"), s.Compile("q"), s.Compile("p^-")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  for (const auto& view_word : AllViewWords(3, 3)) {
    EXPECT_EQ(rewriting->dfa.Accepts(view_word),
              IsWordInMaximalRewriting(query, views, view_word));
  }
}

TEST(RewriterTest, PaperExample1IsExactlyRewritable) {
  // Example 1 query with the natural navigation views: up = hasSubmodule⁻ and
  // downOrVar = containsVar | hasSubmodule give the exact rewriting
  // up* downOrVar.
  SignedAlphabet alphabet;
  alphabet.AddRelation("hasSubmodule");
  alphabet.AddRelation("containsVar");
  Nfa query = MustCompileRegex(
      MustParseRegex("(hasSubmodule^-)* (containsVar | hasSubmodule)"),
      alphabet);
  std::vector<Nfa> views = {
      MustCompileRegex(MustParseRegex("hasSubmodule^-"), alphabet),
      MustCompileRegex(MustParseRegex("containsVar | hasSubmodule"), alphabet),
  };
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_FALSE(rewriting->empty);
  // up* downOrVar ∈ R (symbols: up = 0, up⁻ = 1, downOrVar = 2).
  EXPECT_TRUE(rewriting->dfa.Accepts({2}));
  EXPECT_TRUE(rewriting->dfa.Accepts({0, 2}));
  EXPECT_TRUE(rewriting->dfa.Accepts({0, 0, 2}));
  // A bare up is not a rewriting word (it computes hasSubmodule⁻, not the
  // query), nor is downOrVar followed by up.
  EXPECT_FALSE(rewriting->dfa.Accepts({0}));
  EXPECT_TRUE(IsSoundRewriting(query, views, rewriting->dfa));
  EXPECT_TRUE(IsExactRewriting(query, views, rewriting->dfa));
}

TEST(RewriterTest, InverseViewSymbolsAreUsed) {
  // Query p⁻ with the single view v = p: the only rewriting word is v⁻.
  RewriteCtx s;
  Nfa query = s.Compile("p^-");
  std::vector<Nfa> views = {s.Compile("p")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_FALSE(rewriting->empty);
  EXPECT_TRUE(rewriting->dfa.Accepts({1}));   // v⁻
  EXPECT_FALSE(rewriting->dfa.Accepts({0}));  // v
  EXPECT_TRUE(IsExactRewriting(query, views, rewriting->dfa));
}

TEST(RewriterTest, EmptyRewritingWhenViewsCannotHelp) {
  RewriteCtx s;
  Nfa query = s.Compile("p");
  std::vector<Nfa> views = {s.Compile("q")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_TRUE(rewriting->empty);
  EXPECT_FALSE(IsExactRewriting(query, views, rewriting->dfa));
  StatusOr<bool> nonempty = MaximalRewritingNonEmpty(query, views);
  ASSERT_TRUE(nonempty.ok());
  EXPECT_FALSE(*nonempty);
}

TEST(RewriterTest, NonEmptinessAgreesWithMaterialization) {
  RewriteCtx s;
  struct Case {
    std::string query;
    std::vector<std::string> views;
  };
  std::vector<Case> cases = {
      {"p q", {"p", "q"}},
      {"p q", {"q"}},
      {"(p p)*", {"p p"}},
      {"(p p p)*", {"p p"}},
      {"p^- q", {"p", "q"}},
      {"p", {"p q", "q^-"}},
  };
  for (const Case& c : cases) {
    Nfa query = s.Compile(c.query);
    std::vector<Nfa> views;
    for (const std::string& v : c.views) views.push_back(s.Compile(v));
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views);
    ASSERT_TRUE(rewriting.ok());
    StatusOr<bool> nonempty = MaximalRewritingNonEmpty(query, views);
    ASSERT_TRUE(nonempty.ok());
    EXPECT_EQ(*nonempty, !rewriting->empty) << c.query;
  }
}

TEST(RewriterTest, SoundnessOnRandomInstances) {
  std::mt19937_64 rng(61);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 5;
  regex_options.inverse_probability = 0.3;
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  alphabet.AddRelation("q");
  for (int trial = 0; trial < 12; ++trial) {
    Nfa query = MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    std::vector<Nfa> views;
    int num_views = 1 + static_cast<int>(rng() % 2);
    for (int v = 0; v < num_views; ++v) {
      RandomRegexOptions view_options = regex_options;
      view_options.target_size = 3;
      views.push_back(
          MustCompileRegex(RandomRegex(rng, view_options), alphabet));
    }
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views);
    ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
    EXPECT_TRUE(IsSoundRewriting(query, views, rewriting->dfa))
        << "trial " << trial;
  }
}

TEST(RewriterTest, MaximalityOnRandomInstances) {
  // Every view word outside R must have some expansion not satisfying the
  // query (Theorem 6); IsWordInMaximalRewriting is the independent oracle.
  std::mt19937_64 rng(67);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p"};
  regex_options.target_size = 4;
  regex_options.inverse_probability = 0.35;
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  for (int trial = 0; trial < 8; ++trial) {
    Nfa query = MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    RandomRegexOptions view_options = regex_options;
    view_options.target_size = 2;
    std::vector<Nfa> views = {
        MustCompileRegex(RandomRegex(rng, view_options), alphabet)};
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views);
    ASSERT_TRUE(rewriting.ok());
    for (const auto& view_word : AllViewWords(1, 3)) {
      EXPECT_EQ(rewriting->dfa.Accepts(view_word),
                IsWordInMaximalRewriting(query, views, view_word))
          << "trial " << trial;
    }
  }
}

TEST(BaselineTest, AgreesWithTwoWayRewriterOnInverseFreeInputs) {
  std::mt19937_64 rng(71);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 5;
  regex_options.inverse_probability = 0.0;
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  alphabet.AddRelation("q");
  for (int trial = 0; trial < 10; ++trial) {
    Nfa query = MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    RandomRegexOptions view_options = regex_options;
    view_options.target_size = 3;
    std::vector<Nfa> views = {
        MustCompileRegex(RandomRegex(rng, view_options), alphabet),
        MustCompileRegex(RandomRegex(rng, view_options), alphabet)};
    ASSERT_TRUE(IsInverseFree(query));

    StatusOr<MaximalRewriting> two_way = ComputeMaximalRewriting(query, views);
    StatusOr<MaximalRewriting> baseline =
        ComputeBaselineRpqRewriting(query, views);
    ASSERT_TRUE(two_way.ok());
    ASSERT_TRUE(baseline.ok());
    // The baseline covers forward view words only; on those the two must
    // agree exactly (satisfaction = membership for inverse-free data).
    for (const auto& view_word : AllViewWords(2, 3)) {
      bool forward_only = true;
      for (int symbol : view_word) {
        if (symbol % 2 != 0) forward_only = false;
      }
      if (!forward_only) continue;
      EXPECT_EQ(two_way->dfa.Accepts(view_word),
                baseline->dfa.Accepts(view_word))
          << "trial " << trial;
    }
  }
}

TEST(ExpansionTest, SubstitutesDefinitions) {
  RewriteCtx s;
  std::vector<Nfa> views = {s.Compile("p q"), s.Compile("q^-")};
  // Rewriting automaton accepting v0 v1⁻.
  Nfa rewriting(4);
  int s0 = rewriting.AddState();
  int s1 = rewriting.AddState();
  int s2 = rewriting.AddState();
  rewriting.SetInitial(s0);
  rewriting.SetAccepting(s2);
  rewriting.AddTransition(s0, 0, s1);  // v0
  rewriting.AddTransition(s1, 3, s2);  // v1⁻
  Nfa expansion = ExpandRewriting(rewriting, views);
  // v0 v1⁻ expands to (p q)(inv(q⁻)) = p q q.
  const int kP = 0, kQ = 2;
  EXPECT_TRUE(Accepts(expansion, {kP, kQ, kQ}));
  EXPECT_FALSE(Accepts(expansion, {kP, kQ}));
  EXPECT_FALSE(Accepts(expansion, {kP, kQ, kQ + 1}));
}

TEST(RewriteEvalTest, RewritingAnswersAreSoundOverViewGraph) {
  // Evaluate the Example-1 rewriting over exact extensions and compare with
  // direct evaluation of the query.
  std::mt19937_64 rng(73);
  SoftwareModulesScenario scenario = MakeSoftwareModulesScenario(rng, 5, 3);
  Nfa query = MustCompileRegex(scenario.visibility_query, scenario.alphabet);
  std::vector<Nfa> views;
  for (const RegexPtr& def : scenario.view_definitions) {
    views.push_back(MustCompileRegex(def, scenario.alphabet));
  }
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());

  std::vector<std::vector<std::pair<int, int>>> extensions;
  for (const Nfa& view : views) {
    extensions.push_back(EvalRpqiAllPairs(scenario.db, view));
  }
  auto from_views = EvaluateRewriting(rewriting->dfa, scenario.db.NumNodes(),
                                      extensions);
  auto direct = EvalRpqiAllPairs(scenario.db, query);
  // Soundness: every pair computed from the views is a real answer.
  for (const auto& pair : from_views) {
    EXPECT_TRUE(std::find(direct.begin(), direct.end(), pair) != direct.end());
  }
  // This rewriting is exact and the extensions cover all nodes, so the two
  // answer sets coincide.
  EXPECT_EQ(from_views, direct);
}

TEST(RewriterTest, StatsArePopulated) {
  RewriteCtx s;
  Nfa query = s.Compile("p q");
  std::vector<Nfa> views = {s.Compile("p"), s.Compile("q")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_GT(rewriting->stats.a1_states, 0);
  EXPECT_GT(rewriting->stats.a3_states, 0);
  EXPECT_GT(rewriting->stats.a2_states_discovered, 0);
  EXPECT_GT(rewriting->stats.product_states, 0);
  EXPECT_GT(rewriting->stats.a4_states, 0);
  EXPECT_GT(rewriting->stats.rewriting_states, 0);
}

TEST(RewriterTest, ResourceLimitsAreEnforced) {
  RewriteCtx s;
  Nfa query = s.Compile("(p | q)* p (p | q) (p | q) (p | q)");
  std::vector<Nfa> views = {s.Compile("p"), s.Compile("q")};
  RewritingOptions options;
  options.max_product_states = 3;
  options.allow_partial = false;
  StatusOr<MaximalRewriting> rewriting =
      ComputeMaximalRewriting(query, views, options);
  EXPECT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), Status::Code::kResourceExhausted);

  // With graceful degradation (the default) the same limit yields a certified
  // partial rewriting instead of a dry failure.
  options.allow_partial = true;
  StatusOr<MaximalRewriting> partial =
      ComputeMaximalRewriting(query, views, options);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_FALSE(partial->exhaustive);
  EXPECT_EQ(partial->degradation_cause.code(),
            Status::Code::kResourceExhausted);
}

TEST(RewritingToStringTest, ProducesViewNames) {
  RewriteCtx s;
  Nfa query = s.Compile("p^-");
  std::vector<Nfa> views = {s.Compile("p")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  std::string text = RewritingToString(rewriting->dfa, {"v"});
  EXPECT_NE(text.find("v^-"), std::string::npos) << text;
}

}  // namespace
}  // namespace rpqi
