// Boundary behaviour: empty languages, ε-only queries, zero views, single
// objects, and other corners the main suites do not reach.

#include <gtest/gtest.h>

#include "answer/cda.h"
#include "answer/oda.h"
#include "automata/ops.h"
#include "regex/parser.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "rpq/satisfaction.h"

namespace rpqi {
namespace {

struct Fixture {
  SignedAlphabet alphabet;
  Fixture() { alphabet.AddRelation("p"); }
  Nfa Compile(const std::string& text) {
    return MustCompileRegex(MustParseRegex(text), alphabet);
  }
};

TEST(EdgeCaseTest, EmptyLanguageQuery) {
  Fixture f;
  Nfa empty = f.Compile("%empty");
  EXPECT_TRUE(IsEmpty(empty));
  EXPECT_FALSE(WordSatisfies(empty, {}));
  EXPECT_FALSE(WordSatisfies(empty, {0}));
  // ∅ is contained in everything; nothing nonempty is contained in ∅.
  EXPECT_TRUE(RpqiContained(empty, f.Compile("p")));
  EXPECT_FALSE(RpqiContained(f.Compile("p"), empty));
  EXPECT_TRUE(RpqiContained(empty, empty));
}

TEST(EdgeCaseTest, EmptyQueryRewriting) {
  Fixture f;
  // The maximal rewriting of ∅: only view words with NO expansion at all may
  // appear (their expansion set is vacuously contained). With the total view
  // p every word has an expansion, so only… the empty view word? No: ε
  // expands to {ε}, and ε does not satisfy ∅. The rewriting is empty.
  Nfa query = f.Compile("%empty");
  std::vector<Nfa> views = {f.Compile("p")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_TRUE(rewriting->empty);
}

TEST(EdgeCaseTest, EmptyLanguageView) {
  Fixture f;
  // A view with empty language: any view word USING it has no expansion and
  // is therefore vacuously in every rewriting (Definition 3).
  Nfa query = f.Compile("p");
  std::vector<Nfa> views = {f.Compile("p"), f.Compile("%empty")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_TRUE(rewriting->dfa.Accepts({0}));     // v0 = p
  EXPECT_TRUE(rewriting->dfa.Accepts({2}));     // v1: no expansion, vacuous
  EXPECT_TRUE(rewriting->dfa.Accepts({2, 2}));  // still no expansion
  EXPECT_FALSE(rewriting->dfa.Accepts({0, 0}));
  // Still a sound and (because v0 = query) exact rewriting.
  EXPECT_TRUE(IsSoundRewriting(query, views, rewriting->dfa));
  EXPECT_TRUE(IsExactRewriting(query, views, rewriting->dfa));
}

TEST(EdgeCaseTest, EpsilonQueryRewriting) {
  Fixture f;
  // Query ε: the empty view word ε always expands to {ε} which satisfies ε,
  // so ε ∈ R and the rewriting is exact… only if no other word slips in.
  Nfa query = f.Compile("%eps");
  std::vector<Nfa> views = {f.Compile("p")};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_FALSE(rewriting->empty);
  EXPECT_TRUE(rewriting->dfa.Accepts({}));
  EXPECT_FALSE(rewriting->dfa.Accepts({0}));
  // v v⁻ expands to p p⁻ words, which relate x to x… but also to other
  // nodes with the same p-successor, so it is NOT below ε. Stays out.
  EXPECT_FALSE(rewriting->dfa.Accepts({0, 1}));
  EXPECT_TRUE(IsExactRewriting(query, views, rewriting->dfa));
}

TEST(EdgeCaseTest, SingleObjectAnswering) {
  Fixture f;
  AnsweringInstance instance;
  instance.num_objects = 1;
  instance.query = f.Compile("p*");
  View view;
  view.definition = f.Compile("p");
  view.extension = {};
  view.assumption = ViewAssumption::kExact;  // no p-edges anywhere
  instance.views.push_back(view);

  StatusOr<CdaResult> cda = CertainAnswerCda(instance, 0, 0);
  ASSERT_TRUE(cda.ok());
  EXPECT_TRUE(cda->certain);  // ε-path
  StatusOr<OdaResult> oda = CertainAnswerOda(instance, 0, 0);
  ASSERT_TRUE(oda.ok());
  EXPECT_TRUE(oda->certain);

  instance.query = f.Compile("p");
  StatusOr<CdaResult> cda_p = CertainAnswerCda(instance, 0, 0);
  ASSERT_TRUE(cda_p.ok());
  EXPECT_FALSE(cda_p->certain);
  StatusOr<OdaResult> oda_p = CertainAnswerOda(instance, 0, 0);
  ASSERT_TRUE(oda_p.ok());
  EXPECT_FALSE(oda_p->certain);
  EXPECT_FALSE(PossibleAnswerOda(instance, 0, 0)->certain);
}

TEST(EdgeCaseTest, ViewWithEmptyExtensionStillConstrainsWhenExact) {
  Fixture f;
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = f.Compile("p");
  View view;
  view.definition = f.Compile("p");
  view.extension = {};
  view.assumption = ViewAssumption::kExact;
  instance.views.push_back(view);
  // Exact empty extension: no p-edge exists in any consistent database.
  EXPECT_FALSE(PossibleAnswerCda(instance, 0, 1)->certain);
  EXPECT_FALSE(PossibleAnswerOda(instance, 0, 1)->certain);
  // But as a *sound* view an empty extension constrains nothing.
  instance.views[0].assumption = ViewAssumption::kSound;
  EXPECT_TRUE(PossibleAnswerCda(instance, 0, 1)->certain);
  EXPECT_TRUE(PossibleAnswerOda(instance, 0, 1)->certain);
}

TEST(EdgeCaseTest, SatisfactionOfLongBackAndForthWords) {
  Fixture f;
  // Deep nesting of detours collapses to a single edge.
  Nfa query = f.Compile("p");
  std::vector<int> word = {0};
  Nfa zigzag = f.Compile("p p^- p p^- p");
  EXPECT_TRUE(WordSatisfies(zigzag, word));
  Nfa wrong_parity = f.Compile("p p^-");
  EXPECT_FALSE(WordSatisfies(wrong_parity, word));  // ends at the start node
}

TEST(EdgeCaseTest, ContainmentWithUniversalQuery) {
  Fixture f;
  Nfa universal = f.Compile("(p | p^-)*");
  EXPECT_TRUE(RpqiContained(f.Compile("p p^- | p*"), universal));
  EXPECT_FALSE(RpqiContained(universal, f.Compile("p*")));
  // ε is in the universal query, and ε only connects x to x, so the
  // universal query is NOT contained in p — but p IS contained in it.
  EXPECT_TRUE(RpqiContained(f.Compile("p"), universal));
  EXPECT_FALSE(RpqiContained(universal, f.Compile("p")));
}

TEST(EdgeCaseTest, RewritingOptionsZeroBudgetFailsCleanly) {
  Fixture f;
  Nfa query = f.Compile("p p");
  std::vector<Nfa> views = {f.Compile("p")};
  RewritingOptions options;
  options.max_product_states = 1;
  options.allow_partial = false;
  StatusOr<MaximalRewriting> rewriting =
      ComputeMaximalRewriting(query, views, options);
  EXPECT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), Status::Code::kResourceExhausted);
}

}  // namespace
}  // namespace rpqi
