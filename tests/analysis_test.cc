// Tests for src/analysis: every validator must reject a deliberately
// corrupted input with Status::kInvalidArgument and a diagnostic that names
// the offending state / transition / symbol id, and must accept the healthy
// counterpart. The corruption table exercises exactly the breakages the
// pipeline stages are gated against (wrong rewritings, not crashes).

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/validate.h"
#include "automata/ops.h"
#include "graphdb/graph.h"
#include "gtest/gtest.h"
#include "regex/ast.h"
#include "rpq/satisfaction.h"

namespace rpqi {
namespace {

void ExpectRejected(const Status& status,
                    const std::vector<std::string>& name_fragments,
                    const std::string& what) {
  ASSERT_FALSE(status.ok()) << what << ": corruption was not detected";
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << what;
  for (const std::string& fragment : name_fragments) {
    EXPECT_NE(status.message().find(fragment), std::string::npos)
        << what << ": diagnostic \"" << status.message()
        << "\" does not name \"" << fragment << "\"";
  }
}

Nfa TwoStateNfa(int num_symbols) {
  Nfa nfa(num_symbols);
  int a = nfa.AddState();
  int b = nfa.AddState();
  nfa.SetInitial(a);
  nfa.SetAccepting(b);
  nfa.AddTransition(a, 0, b);
  return nfa;
}

// ---------------------------------------------------------------------------
// Corruption table. Each row builds a broken artifact through a public API
// and says which ids its diagnostic must mention.

struct CorruptionCase {
  std::string name;
  std::function<Status()> validate;
  std::vector<std::string> expect_named;
};

std::vector<CorruptionCase> CorruptionTable() {
  std::vector<CorruptionCase> table;

  table.push_back(
      {"raw nfa target state out of range",
       [] {
         RawNfa raw;
         raw.num_symbols = 2;
         raw.num_states = 3;
         raw.initial = {0};
         raw.accepting = {2};
         raw.transitions = {{0, 1, 2}, {1, 0, 7}};  // state 7 does not exist
         return ValidateRawNfa(raw);
       },
       {"transition 1", "target state 7", "[0, 3)"}});

  table.push_back(
      {"raw nfa symbol out of alphabet range",
       [] {
         RawNfa raw;
         raw.num_symbols = 2;
         raw.num_states = 2;
         raw.initial = {0};
         raw.transitions = {{0, 9, 1}};  // symbol 9 in a 2-symbol alphabet
         return ValidateRawNfa(raw);
       },
       {"transition 0", "symbol 9", "[0, 2)"}});

  table.push_back(
      {"raw nfa initial state out of range",
       [] {
         RawNfa raw;
         raw.num_symbols = 2;
         raw.num_states = 2;
         raw.initial = {5};
         return ValidateRawNfa(raw);
       },
       {"initial state 5", "[0, 2)"}});

  table.push_back(
      {"duplicate dfa edge",
       [] {
         // An Nfa claiming determinism, with two successors on (0, symbol 0).
         Nfa nfa(1);
         int s0 = nfa.AddState();
         int s1 = nfa.AddState();
         int s2 = nfa.AddState();
         nfa.SetInitial(s0);
         nfa.AddTransition(s0, 0, s1);
         nfa.AddTransition(s0, 0, s2);
         return ValidateDeterministic(nfa);
       },
       {"state 0", "symbol 0", "targets 1 and 2"}});

  table.push_back(
      {"non-total dfa",
       [] {
         Dfa dfa(2, 2);  // next entries default to -1 (missing)
         dfa.SetInitial(0);
         dfa.SetNext(0, 0, 1);
         DfaValidateOptions options;
         options.require_total = true;
         return ValidateDfa(dfa, options);
       },
       {"state 0", "no successor on symbol 1"}});

  table.push_back(
      {"unpaired inverse symbol",
       [] {
         // A 3-symbol alphabet cannot be Σ±: symbol 2 has no ± partner.
         NfaValidateOptions options;
         options.require_signed_alphabet = true;
         return ValidateNfa(TwoStateNfa(3), options);
       },
       {"symbol 2", "no ± partner"}});

  table.push_back(
      {"epsilon where freedom is required",
       [] {
         Nfa nfa(2);
         int a = nfa.AddState();
         int b = nfa.AddState();
         nfa.SetInitial(a);
         nfa.AddTransition(a, kEpsilon, b);
         NfaValidateOptions options;
         options.require_epsilon_free = true;
         return ValidateNfa(nfa, options);
       },
       {"state 0", "ε-transition"}});

  table.push_back(
      {"two-way head move not a direction",
       [] {
         // AddTransition does not range-check the Move enum, so a garbage
         // cast survives construction; the validator is the backstop.
         TwoWayNfa automaton(2);
         int a = automaton.AddState();
         int b = automaton.AddState();
         automaton.SetInitial(a);
         automaton.AddTransition(a, 1, b, static_cast<Move>(3));
         return ValidateTwoWay(automaton);
       },
       {"state 0", "symbol 1", "head move 3"}});

  table.push_back(
      {"two-way accepting state not stuck",
       [] {
         TwoWayNfa automaton(2);
         int a = automaton.AddState();
         int b = automaton.AddState();
         automaton.SetInitial(a);
         automaton.SetAccepting(b);
         automaton.AddTransition(b, 0, a, Move::kRight);
         TwoWayValidateOptions options;
         options.require_stuck_accepting = true;
         return ValidateTwoWay(automaton, options);
       },
       {"accepting state 1", "outgoing transition on symbol 0"}});

  table.push_back(
      {"graphdb relation id out of range",
       [] {
         // GraphDb::AddEdge only checks relation >= 0; it cannot know the
         // alphabet, so a stale relation id is representable.
         GraphDb db;
         db.AddNode("x");
         db.AddNode("y");
         db.AddEdge(0, 5, 1);
         return ValidateGraphDb(db, /*num_relations=*/2);
       },
       {"relation id 5", "[0, 2)"}});

  table.push_back(
      {"regex concat missing right operand",
       [] {
         auto node = std::make_shared<Regex>();
         node->kind = RegexKind::kConcat;
         node->left = RAtom("r");
         return ValidateRegexAst(node);
       },
       {"node 0", "missing right operand"}});

  table.push_back(
      {"regex atom with empty name",
       [] {
         auto corrupt = std::make_shared<Regex>();
         corrupt->kind = RegexKind::kAtom;
         RegexPtr root = RConcat(RAtom("r"), corrupt);
         return ValidateRegexAst(root);
       },
       {"node 2", "empty name"}});

  table.push_back(
      {"view definition alphabet mismatch",
       [] {
         // Query over Σ± of 4 symbols, definition over only 2.
         return ValidateViewExtensions(4, {TwoStateNfa(2)}, {}, 0);
       },
       {"view 0", "definition alphabet has 2 symbols", "query has 4"}});

  table.push_back(
      {"view extension pair out of range",
       [] {
         return ValidateViewExtensions(2, {TwoStateNfa(2)}, {{{1, 9}}},
                                       /*num_objects=*/3);
       },
       {"view 0", "pair 0", "(1, 9)", "[0, 3)"}});

  table.push_back(
      {"dangling view name",
       [] { return ValidateViewNames({"reachable"}, {"reachible"}); },
       {"undefined view 'reachible'", "dangling"}});

  table.push_back(
      {"duplicate view definition name",
       [] { return ValidateViewNames({"v", "v"}, {}); },
       {"view 'v'", "defined twice"}});

  table.push_back(
      {"nfa cached transition count out of sync",
       [] {
         Nfa nfa = TwoStateNfa(2);
         nfa.CorruptTransitionCountForTesting();
         return ValidateNfa(nfa, NfaValidateOptions{});
       },
       {"cached", "transition count"}});

  table.push_back(
      {"bitset cached hash stale",
       [] {
         Bitset bits(70);
         bits.Set(3);
         bits.Set(65);
         bits.CorruptCachedHashForTesting();
         return ValidateBitsetHash(bits);
       },
       {"cached hash", "stale"}});

  return table;
}

TEST(AnalysisCorruptionTest, EveryCorruptionIsRejectedAndNamed) {
  for (const CorruptionCase& c : CorruptionTable()) {
    ExpectRejected(c.validate(), c.expect_named, c.name);
  }
}

// ---------------------------------------------------------------------------
// Healthy counterparts: the validators accept what the pipeline produces.

TEST(AnalysisAcceptanceTest, HealthyNfaPasses) {
  NfaValidateOptions options;
  options.require_initial_state = true;
  options.require_signed_alphabet = true;
  options.expected_num_symbols = 2;
  EXPECT_TRUE(ValidateNfa(TwoStateNfa(2), options).ok());
}

TEST(AnalysisAcceptanceTest, DeterminizedDfaIsTotalAndValid) {
  Nfa nfa(2);
  int a = nfa.AddState();
  int b = nfa.AddState();
  nfa.SetInitial(a);
  nfa.SetAccepting(b);
  nfa.AddTransition(a, 0, b);
  nfa.AddTransition(a, 1, a);
  nfa.AddTransition(b, kEpsilon, a);
  Dfa dfa = Determinize(nfa);
  DfaValidateOptions options;
  options.require_total = true;
  options.expected_num_symbols = 2;
  EXPECT_TRUE(ValidateDfa(dfa, options).ok());
  EXPECT_TRUE(ValidateDeterministic(DfaToNfa(dfa)).ok());
}

TEST(AnalysisAcceptanceTest, SatisfactionAutomatonHasStuckFinalState) {
  Nfa query = TwoStateNfa(2);
  SatisfactionOptions options;
  options.total_symbols = query.num_symbols() + 1;
  options.dollar_symbol = query.num_symbols();
  TwoWayNfa a1 = BuildSatisfactionAutomaton(query, options);
  TwoWayValidateOptions validate_options;
  validate_options.require_initial_state = true;
  validate_options.require_stuck_accepting = true;
  validate_options.expected_num_symbols = options.total_symbols;
  EXPECT_TRUE(ValidateTwoWay(a1, validate_options).ok());
}

TEST(AnalysisAcceptanceTest, BuildValidatedNfaRoundTrips) {
  RawNfa raw;
  raw.num_symbols = 2;
  raw.num_states = 2;
  raw.initial = {0};
  raw.accepting = {1};
  raw.transitions = {{0, 0, 1}, {1, 1, 0}};
  StatusOr<Nfa> nfa = BuildValidatedNfa(raw);
  ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
  EXPECT_EQ(nfa->NumStates(), 2);
  EXPECT_EQ(nfa->NumTransitions(), 2);
  EXPECT_TRUE(nfa->IsInitial(0));
  EXPECT_TRUE(nfa->IsAccepting(1));
}

TEST(AnalysisAcceptanceTest, BuildValidatedNfaRejectsBadDescription) {
  RawNfa raw;
  raw.num_symbols = 2;
  raw.num_states = 2;
  raw.initial = {0};
  raw.transitions = {{0, 0, 3}};
  StatusOr<Nfa> nfa = BuildValidatedNfa(raw);
  ExpectRejected(nfa.status(), {"target state 3"}, "BuildValidatedNfa");
}

TEST(AnalysisAcceptanceTest, HealthyGraphDbPasses) {
  GraphDb db;
  db.AddNode("x");
  db.AddNode("y");
  db.AddEdge(0, 0, 1);
  db.AddEdge(1, 1, 0);
  EXPECT_TRUE(ValidateGraphDb(db, 2).ok());
}

TEST(AnalysisAcceptanceTest, HealthyRegexPasses) {
  RegexPtr expr = RStar(RUnion(RConcat(RAtom("r"), RAtom("s", true)),
                               REpsilon()));
  EXPECT_TRUE(ValidateRegexAst(expr).ok());
}

TEST(AnalysisAcceptanceTest, HealthyBitsetHashPasses) {
  Bitset bits(70);
  EXPECT_TRUE(ValidateBitsetHash(bits).ok());  // no cached hash yet
  bits.Set(3);
  bits.Set(65);
  const uint64_t hash = bits.Hash();
  EXPECT_NE(hash, 0u);
  EXPECT_TRUE(ValidateBitsetHash(bits).ok());  // freshly cached
  bits.Reset(3);
  EXPECT_TRUE(ValidateBitsetHash(bits).ok());  // cache invalidated, recomputed
}

TEST(AnalysisAcceptanceTest, NfaTransitionCountStaysExact) {
  // NumTransitions must track AddTransition exactly (it is O(1) cached).
  Nfa nfa(2);
  int a = nfa.AddState();
  int b = nfa.AddState();
  EXPECT_EQ(nfa.NumTransitions(), 0);
  nfa.AddTransition(a, 0, b);
  nfa.AddTransition(b, 1, a);
  nfa.AddTransition(a, kEpsilon, b);
  EXPECT_EQ(nfa.NumTransitions(), 3);
  Nfa copy = nfa;
  EXPECT_EQ(copy.NumTransitions(), 3);
}

}  // namespace
}  // namespace rpqi
