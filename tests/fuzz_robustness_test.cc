// Fuzz-style robustness tests (deterministic, seeded): hammer the regex
// parser and the graph-text reader with random and mutated inputs and assert
// that every failure is a typed Status — never a crash, CHECK-abort, or
// runaway allocation. Runs under ctest like any other test.
//
// The base seed defaults to kDefaultSeed and can be overridden through the
// RPQI_FUZZ_SEED environment variable (decimal or 0x-hex) to reproduce a CI
// failure or widen coverage; every failure message includes the seed in use.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "graphdb/io.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "rpq/satisfaction.h"

namespace rpqi {
namespace {

constexpr uint64_t kDefaultSeed = 0x5eed5eed2026;

uint64_t BaseSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("RPQI_FUZZ_SEED");
    if (env == nullptr || *env == '\0') return kDefaultSeed;
    char* end = nullptr;
    uint64_t parsed = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0') {
      ADD_FAILURE() << "RPQI_FUZZ_SEED='" << env
                    << "' is not a number; using default seed";
      return kDefaultSeed;
    }
    return parsed;
  }();
  return seed;
}

/// Scoped trace naming the effective seed, so any assertion failure inside a
/// fuzz loop prints how to reproduce it.
#define RPQI_FUZZ_SCOPE(offset)                                    \
  SCOPED_TRACE(::testing::Message()                                \
               << "reproduce with RPQI_FUZZ_SEED=" << BaseSeed()   \
               << " (stream offset " << (offset) << ")")

/// Characters the regex grammar cares about, plus plain identifier letters.
std::string RandomRegexText(std::mt19937_64& rng, int max_length) {
  static const std::string kCharset = "abpq ()|*+?^-%$#0123456789\t\\\"";
  std::uniform_int_distribution<int> length_dist(0, max_length);
  std::uniform_int_distribution<size_t> char_dist(0, kCharset.size() - 1);
  std::string text;
  int length = length_dist(rng);
  for (int i = 0; i < length; ++i) text += kCharset[char_dist(rng)];
  return text;
}

/// Mutates a valid expression: random byte flips, deletions, duplications.
std::string Mutate(std::mt19937_64& rng, std::string text) {
  static const std::string kCharset = "abpq ()|*+?^-%$";
  std::uniform_int_distribution<int> count_dist(1, 4);
  int mutations = count_dist(rng);
  for (int i = 0; i < mutations && !text.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos_dist(0, text.size() - 1);
    size_t pos = pos_dist(rng);
    switch (rng() % 3) {
      case 0:
        text[pos] = kCharset[rng() % kCharset.size()];
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, kCharset[rng() % kCharset.size()]);
        break;
    }
  }
  return text;
}

void ExpectParseIsWellBehaved(const std::string& text) {
  StatusOr<RegexPtr> parsed = ParseRegex(text);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument)
        << "input: " << text;
    EXPECT_FALSE(parsed.status().message().empty());
    return;
  }
  // Accepted expressions must survive the whole front end: registration,
  // compilation, and a satisfaction probe on the empty word.
  SignedAlphabet alphabet;
  RegisterRelations({*parsed}, &alphabet);
  StatusOr<Nfa> compiled = CompileRegex(*parsed, alphabet);
  ASSERT_TRUE(compiled.ok()) << "parsed but failed to compile: " << text;
  WordSatisfies(*compiled, {});
}

TEST(FuzzRobustnessTest, RandomRegexInputsNeverCrash) {
  RPQI_FUZZ_SCOPE(0);
  std::mt19937_64 rng(BaseSeed());
  for (int i = 0; i < 800; ++i) {
    ExpectParseIsWellBehaved(RandomRegexText(rng, 40));
  }
}

TEST(FuzzRobustnessTest, MutatedValidExpressionsNeverCrash) {
  RPQI_FUZZ_SCOPE(1);
  std::mt19937_64 rng(BaseSeed() + 1);
  const std::vector<std::string> seeds = {
      "p (q^- p)*",
      "(a | b)* a (a | b)",
      "p q | q p^-",
      "%eps | p+ q?",
      "%empty",
      "((a))",
  };
  for (int i = 0; i < 600; ++i) {
    ExpectParseIsWellBehaved(Mutate(rng, seeds[i % seeds.size()]));
  }
}

std::string RandomGraphText(std::mt19937_64& rng, int max_lines) {
  static const std::string kCharset = "abn012 #\t_-";
  std::uniform_int_distribution<int> lines_dist(0, max_lines);
  std::uniform_int_distribution<int> length_dist(0, 30);
  std::uniform_int_distribution<size_t> char_dist(0, kCharset.size() - 1);
  std::string text;
  int lines = lines_dist(rng);
  for (int i = 0; i < lines; ++i) {
    int length = length_dist(rng);
    for (int j = 0; j < length; ++j) text += kCharset[char_dist(rng)];
    text += '\n';
  }
  return text;
}

TEST(FuzzRobustnessTest, RandomGraphTextNeverCrashes) {
  RPQI_FUZZ_SCOPE(2);
  std::mt19937_64 rng(BaseSeed() + 2);
  for (int i = 0; i < 500; ++i) {
    SignedAlphabet alphabet;
    StatusOr<GraphDb> db = LoadGraphText(RandomGraphText(rng, 12), &alphabet);
    if (!db.ok()) {
      EXPECT_EQ(db.status().code(), Status::Code::kInvalidArgument);
      // Every reader error names the offending line.
      EXPECT_NE(db.status().message().find("line "), std::string::npos);
    }
  }
}

TEST(FuzzRobustnessTest, GraphReaderEnforcesLimits) {
  SignedAlphabet alphabet;

  // Missing field.
  StatusOr<GraphDb> missing = LoadGraphText("n0 r\n", &alphabet);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(missing.status().message().find("line 1"), std::string::npos);

  // Error reports the right line past comments and blanks.
  StatusOr<GraphDb> later =
      LoadGraphText("# header\n\nn0 r n1\nbroken line here now\n", &alphabet);
  ASSERT_FALSE(later.ok());
  EXPECT_NE(later.status().message().find("line 4"), std::string::npos);

  // Oversized node name.
  GraphTextLimits tight;
  tight.max_name_length = 8;
  StatusOr<GraphDb> long_name = LoadGraphText(
      "averyveryverylongnodename r n1\n", &alphabet, tight);
  ASSERT_FALSE(long_name.ok());
  EXPECT_EQ(long_name.status().code(), Status::Code::kInvalidArgument);

  // Node population cap ("huge node ids" in interned form).
  GraphTextLimits two_nodes;
  two_nodes.max_nodes = 2;
  StatusOr<GraphDb> too_many =
      LoadGraphText("n0 r n1\nn2 r n3\n", &alphabet, two_nodes);
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(too_many.status().message().find("line 2"), std::string::npos);

  // Edge cap.
  GraphTextLimits one_edge;
  one_edge.max_edges = 1;
  StatusOr<GraphDb> too_dense =
      LoadGraphText("n0 r n1\nn0 r n1\n", &alphabet, one_edge);
  ASSERT_FALSE(too_dense.ok());
  EXPECT_EQ(too_dense.status().code(), Status::Code::kInvalidArgument);

  // A well-formed graph still loads with the default limits.
  StatusOr<GraphDb> good = LoadGraphText("n0 r n1\nn1 s n2\n", &alphabet);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->NumNodes(), 3);
}

}  // namespace
}  // namespace rpqi
