// Tests for the binary columnar snapshot format (src/graphdb/columnar.h):
// round-trip identity (text -> compact -> load gives bit-identical eval
// answers and a stable plan-cache fingerprint), structured rejection of
// truncated / bit-flipped / misaligned / version-skewed files with
// byte-offset diagnostics, the relation-remap load path, and the
// graphdb.compact_write fault site.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "analysis/validate.h"
#include "fault/fault.h"
#include "graphdb/columnar.h"
#include "graphdb/eval.h"
#include "graphdb/graph.h"
#include "graphdb/io.h"
#include "regex/parser.h"
#include "rpq/compile.h"
#include "service/snapshot.h"
#include "workload/graph_gen.h"

namespace rpqi {
namespace {

struct FaultGuard {
  FaultGuard() { fault::DisarmAll(); }
  ~FaultGuard() { fault::DisarmAll(); }
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

/// A small multi-relation graph exercising shared prefixes in the name
/// dictionary, inverse traversal, parallel edges (multigraph), and a
/// relation that only ever appears inverted.
constexpr char kGraphText[] = R"(alpha r0 beta
alpha r0 beta
beta r1 gamma
gamma r0 alpha
delta r2 alpha
alphabet r1 delta
beta r2 alphabet
)";

GraphDb LoadFixture(SignedAlphabet* alphabet) {
  StatusOr<GraphDb> db = LoadGraphText(kGraphText, alphabet);
  RPQI_CHECK(db.ok());
  return std::move(db).value();
}

StatusOr<GraphDb> ReloadThroughColumnar(const GraphDb& db,
                                        const SignedAlphabet& alphabet,
                                        SignedAlphabet* reloaded_alphabet,
                                        uint64_t* fingerprint_out = nullptr) {
  RPQI_ASSIGN_OR_RETURN(std::string encoded,
                        EncodeColumnar(db, alphabet, /*fingerprint=*/42));
  RPQI_ASSIGN_OR_RETURN(
      ColumnarParts parts,
      DecodeColumnar(std::make_shared<const std::string>(std::move(encoded)),
                     "test"));
  if (fingerprint_out != nullptr) *fingerprint_out = parts.fingerprint;
  std::vector<int> relation_ids;
  for (int r = 0; r < parts.num_relations; ++r) {
    relation_ids.push_back(
        reloaded_alphabet->AddRelation(std::string(parts.RelationName(r))));
  }
  return MakeColumnarGraphDb(parts, relation_ids,
                             reloaded_alphabet->NumRelations());
}

TEST(ColumnarTest, RoundTripPreservesNodesEdgesAndNames) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  db.BuildLabelIndex(alphabet.NumRelations());

  SignedAlphabet reloaded_alphabet;
  uint64_t fingerprint = 0;
  StatusOr<GraphDb> reloaded =
      ReloadThroughColumnar(db, alphabet, &reloaded_alphabet, &fingerprint);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(fingerprint, 42u);
  EXPECT_TRUE(reloaded->columnar());
  EXPECT_TRUE(reloaded->has_label_index());
  EXPECT_EQ(reloaded->NumNodes(), db.NumNodes());
  EXPECT_EQ(reloaded->NumEdges(), db.NumEdges());
  // Node ids are preserved (insertion order), names agree, and the sorted
  // dictionary answers NodeId without an interner.
  for (int id = 0; id < db.NumNodes(); ++id) {
    EXPECT_EQ(reloaded->NodeName(id), db.NodeName(id));
    EXPECT_EQ(reloaded->NodeId(std::string(db.NodeName(id))), id);
  }
  EXPECT_EQ(reloaded->NodeId("alphabetical"), -1);
  EXPECT_EQ(reloaded->NodeId(""), -1);
  // Validation passes in columnar mode (CSR invariants incl. the mirror).
  EXPECT_TRUE(
      ValidateGraphDb(*reloaded, reloaded_alphabet.NumRelations()).ok());
  EXPECT_TRUE(CheckGraphEquivalence(db, alphabet, *reloaded, reloaded_alphabet)
                  .ok());
  // HasEdge via binary search over CSR spans, including the duplicate edge.
  int alpha = db.NodeId("alpha"), beta = db.NodeId("beta");
  EXPECT_TRUE(reloaded->HasEdge(alpha, 0, beta));
  EXPECT_FALSE(reloaded->HasEdge(beta, 0, alpha));
}

TEST(ColumnarTest, RoundTripGivesBitIdenticalEvalAnswers) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  db.BuildLabelIndex(alphabet.NumRelations());
  SignedAlphabet reloaded_alphabet;
  StatusOr<GraphDb> reloaded =
      ReloadThroughColumnar(db, alphabet, &reloaded_alphabet);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  const char* queries[] = {"r0", "r0 r1", "(r0 | r1^-)*", "r2^- r0 (r1 | r0^-)*"};
  for (const char* q : queries) {
    Nfa query = MustCompileRegex(MustParseRegex(q), alphabet);
    Nfa reloaded_query =
        MustCompileRegex(MustParseRegex(q), reloaded_alphabet);
    EXPECT_EQ(EvalRpqiAllPairs(db, query),
              EvalRpqiAllPairs(*reloaded, reloaded_query))
        << "query " << q;
  }
}

TEST(ColumnarTest, CsrEvalMatchesRowScanOnRandomGraphs) {
  // The CSR fast path and the filtered row scan must agree configuration-for-
  // configuration on arbitrary multigraphs, not just the fixture.
  std::mt19937_64 rng(7);
  SignedAlphabet alphabet;
  alphabet.AddRelation("r0");
  alphabet.AddRelation("r1");
  alphabet.AddRelation("r2");
  Nfa query =
      MustCompileRegex(MustParseRegex("r0 (r1^- | r2)* r0?"), alphabet);
  for (int trial = 0; trial < 10; ++trial) {
    RandomGraphOptions options;
    options.num_nodes = 24;
    options.num_relations = 3;
    options.average_out_degree = 2.5;
    GraphDb row_db = RandomGraph(rng, options);
    GraphDb indexed_db = row_db;
    indexed_db.BuildLabelIndex(alphabet.NumRelations());
    ASSERT_FALSE(row_db.has_label_index());
    ASSERT_TRUE(indexed_db.has_label_index());
    EXPECT_EQ(EvalRpqiAllPairs(row_db, query),
              EvalRpqiAllPairs(indexed_db, query));
  }
}

TEST(ColumnarTest, MutationInvalidatesLabelIndex) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  db.BuildLabelIndex(alphabet.NumRelations());
  ASSERT_TRUE(db.has_label_index());
  int a = db.AddNode("zeta");
  int b = db.AddNode("eta");
  db.AddEdge(a, 0, b);
  EXPECT_FALSE(db.has_label_index());  // stale spans must not survive
  EXPECT_EQ(db.NumEdges(), 8);         // cached count keeps up
}

TEST(ColumnarTest, RelationRemapLoadPreservesSemantics) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  db.BuildLabelIndex(alphabet.NumRelations());
  // A caller whose alphabet already numbered relations differently: r2 and
  // r1 are registered first, so the file's ids (r0=0, r1=1, r2=2) land on
  // (r0=2, r1=1, r2=0) — the owned-remap path of MakeColumnarGraphDb.
  SignedAlphabet reloaded_alphabet;
  reloaded_alphabet.AddRelation("r2");
  reloaded_alphabet.AddRelation("r1");
  StatusOr<GraphDb> reloaded =
      ReloadThroughColumnar(db, alphabet, &reloaded_alphabet);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(
      ValidateGraphDb(*reloaded, reloaded_alphabet.NumRelations()).ok());
  EXPECT_TRUE(CheckGraphEquivalence(db, alphabet, *reloaded, reloaded_alphabet)
                  .ok());
  Nfa query = MustCompileRegex(MustParseRegex("r0 (r1^- | r2)*"), alphabet);
  Nfa remapped_query =
      MustCompileRegex(MustParseRegex("r0 (r1^- | r2)*"), reloaded_alphabet);
  EXPECT_EQ(EvalRpqiAllPairs(db, query),
            EvalRpqiAllPairs(*reloaded, remapped_query));
}

TEST(ColumnarTest, TruncatedFileIsRejectedWithByteOffsets) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  StatusOr<std::string> encoded = EncodeColumnar(db, alphabet, 1);
  ASSERT_TRUE(encoded.ok());
  // Shorter than the header.
  {
    auto bytes = std::make_shared<const std::string>(encoded->substr(0, 100));
    StatusOr<ColumnarParts> parts = DecodeColumnar(bytes, "torn");
    ASSERT_FALSE(parts.ok());
    EXPECT_NE(parts.status().message().find("torn: truncated"),
              std::string::npos)
        << parts.status().ToString();
  }
  // Header intact, payload cut: the header's file_bytes exposes it.
  {
    auto bytes = std::make_shared<const std::string>(
        encoded->substr(0, encoded->size() - 8));
    StatusOr<ColumnarParts> parts = DecodeColumnar(bytes, "torn");
    ASSERT_FALSE(parts.ok());
    EXPECT_NE(parts.status().message().find("byte 16"), std::string::npos)
        << parts.status().ToString();
    EXPECT_NE(parts.status().message().find("truncated or torn"),
              std::string::npos);
  }
}

TEST(ColumnarTest, BitFlipsAreRejectedByChecksumEverywhere) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  StatusOr<std::string> encoded = EncodeColumnar(db, alphabet, 1);
  ASSERT_TRUE(encoded.ok());
  // Flip one bit at every 7th byte position across the WHOLE file, header
  // included (the checksum covers everything but its own field, whose flips
  // show up as a stored/computed mismatch anyway). Every corruption must be
  // caught.
  for (size_t at = 0; at < encoded->size(); at += 7) {
    std::string corrupt = *encoded;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
    auto bytes = std::make_shared<const std::string>(std::move(corrupt));
    StatusOr<ColumnarParts> parts = DecodeColumnar(bytes, "flip");
    EXPECT_FALSE(parts.ok()) << "flip at byte " << at << " went undetected";
  }
}

TEST(ColumnarTest, HeaderCorruptionIsRejectedWithFieldOffsets) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  StatusOr<std::string> encoded = EncodeColumnar(db, alphabet, 1);
  ASSERT_TRUE(encoded.ok());
  struct Case {
    size_t at;
    char value;
    const char* expect;
  };
  const Case cases[] = {
      {0, 'X', "bad magic"},               // magic
      {8, 9, "unsupported version"},       // version (little-endian low byte)
      {12, 0, "endianness tag mismatch"},  // endian tag
  };
  for (const Case& c : cases) {
    std::string corrupt = *encoded;
    corrupt[c.at] = c.value;
    auto bytes = std::make_shared<const std::string>(std::move(corrupt));
    StatusOr<ColumnarParts> parts = DecodeColumnar(bytes, "hdr");
    ASSERT_FALSE(parts.ok()) << c.expect;
    EXPECT_NE(parts.status().message().find(c.expect), std::string::npos)
        << parts.status().ToString();
  }
}

TEST(ColumnarTest, OverflowingEdgeCountIsRejectedAsImplausible) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  StatusOr<std::string> encoded = EncodeColumnar(db, alphabet, 1);
  ASSERT_TRUE(encoded.ok());
  // num_edges lives at bytes [48, 56). e = 2^62 made the expected-size
  // arithmetic wrap (e * 4 == 0 mod 2^64), so a crafted file with empty
  // target sections and a recomputed checksum could pass every size check
  // and then read far out of bounds. The counts must be rejected up front,
  // before any section-table or payload access.
  const uint64_t kForged[] = {uint64_t{1} << 62, uint64_t{1} << 61,
                              uint64_t{1} << 40};
  for (uint64_t e : kForged) {
    std::string corrupt = *encoded;
    std::memcpy(corrupt.data() + 48, &e, 8);
    auto bytes = std::make_shared<const std::string>(std::move(corrupt));
    StatusOr<ColumnarParts> parts = DecodeColumnar(bytes, "forge");
    ASSERT_FALSE(parts.ok()) << "num_edges=" << e << " went undetected";
    EXPECT_NE(parts.status().message().find("implausible counts"),
              std::string::npos)
        << "num_edges=" << e << ": " << parts.status().ToString();
  }
}

TEST(ColumnarTest, MisalignedBufferIsRejected) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  StatusOr<std::string> encoded = EncodeColumnar(db, alphabet, 1);
  ASSERT_TRUE(encoded.ok());
  // An 8-byte-aligned allocation viewed at +1 can never be 8-byte aligned;
  // the parser must refuse before any pointer-cast access.
  auto padded = std::make_shared<std::string>();
  padded->push_back('\0');
  padded->append(*encoded);
  StatusOr<ColumnarParts> parts =
      ParseColumnarView(padded->data() + 1, encoded->size(), padded, "skew");
  ASSERT_FALSE(parts.ok());
  EXPECT_NE(parts.status().message().find("not 8-byte aligned"),
            std::string::npos)
      << parts.status().ToString();
}

TEST(ColumnarTest, CompactWriteFaultSiteFails) {
  FaultGuard guard;
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  const std::string path = TempPath("columnar_fault.rpqicol");
  ASSERT_TRUE(fault::Configure("graphdb.compact_write=once").ok());
  Status failed = WriteColumnarFile(path, db, alphabet, 1);
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected write failure"),
            std::string::npos);
  // Second attempt (fault exhausted) succeeds and the file parses.
  ASSERT_TRUE(WriteColumnarFile(path, db, alphabet, 1).ok());
  EXPECT_TRUE(OpenColumnarFile(path).ok());
  std::remove(path.c_str());
}

TEST(ColumnarTest, SnapshotLoaderSniffsFormatAndKeepsFingerprint) {
  // The serve-path property behind plan-cache warmth: loading the text
  // snapshot and loading its compacted twin yield the same fingerprint,
  // node ids, and eval results.
  const std::string text_path = TempPath("columnar_snap.txt");
  const std::string bin_path = TempPath("columnar_snap.rpqicol");
  WriteFile(text_path, kGraphText);

  StatusOr<std::shared_ptr<const service::GraphSnapshot>> from_text =
      service::LoadGraphSnapshot(text_path, SignedAlphabet());
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_TRUE((*from_text)->db.has_label_index());
  EXPECT_FALSE((*from_text)->db.columnar());

  ASSERT_TRUE(WriteColumnarFile(bin_path, (*from_text)->db,
                                (*from_text)->alphabet,
                                (*from_text)->fingerprint)
                  .ok());
  StatusOr<std::shared_ptr<const service::GraphSnapshot>> from_bin =
      service::LoadGraphSnapshot(bin_path, SignedAlphabet());
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  EXPECT_TRUE((*from_bin)->db.columnar());
  EXPECT_EQ((*from_bin)->fingerprint, (*from_text)->fingerprint);
  EXPECT_EQ((*from_bin)->db.NumNodes(), (*from_text)->db.NumNodes());
  EXPECT_EQ((*from_bin)->db.NumEdges(), (*from_text)->db.NumEdges());

  Nfa text_query = MustCompileRegex(MustParseRegex("r0 (r1 | r2^-)*"),
                                    (*from_text)->alphabet);
  Nfa bin_query = MustCompileRegex(MustParseRegex("r0 (r1 | r2^-)*"),
                                   (*from_bin)->alphabet);
  EXPECT_EQ(EvalRpqiAllPairs((*from_text)->db, text_query),
            EvalRpqiAllPairs((*from_bin)->db, bin_query));

  // A torn binary on disk degrades to a structured error, never UB.
  StatusOr<std::string> encoded = EncodeColumnar(
      (*from_text)->db, (*from_text)->alphabet, (*from_text)->fingerprint);
  ASSERT_TRUE(encoded.ok());
  WriteFile(bin_path, encoded->substr(0, encoded->size() / 2));
  StatusOr<std::shared_ptr<const service::GraphSnapshot>> torn =
      service::LoadGraphSnapshot(bin_path, SignedAlphabet());
  ASSERT_FALSE(torn.ok());
  EXPECT_NE(torn.status().message().find(bin_path), std::string::npos);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(ColumnarTest, SaveGraphTextWorksInColumnarMode) {
  SignedAlphabet alphabet;
  GraphDb db = LoadFixture(&alphabet);
  db.BuildLabelIndex(alphabet.NumRelations());
  SignedAlphabet reloaded_alphabet;
  StatusOr<GraphDb> reloaded =
      ReloadThroughColumnar(db, alphabet, &reloaded_alphabet);
  ASSERT_TRUE(reloaded.ok());
  // Re-parsing the columnar database's text emission gives an equivalent
  // graph (line order may differ between modes; semantics may not).
  SignedAlphabet reparsed_alphabet;
  StatusOr<GraphDb> reparsed = LoadGraphText(
      SaveGraphText(*reloaded, reloaded_alphabet), &reparsed_alphabet);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(CheckGraphEquivalence(db, alphabet, *reparsed, reparsed_alphabet)
                  .ok());
}

}  // namespace
}  // namespace rpqi
