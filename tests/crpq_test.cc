#include <gtest/gtest.h>

#include <random>

#include "crpq/crpq.h"
#include "graphdb/eval.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/graph_gen.h"
#include "workload/regex_gen.h"

namespace rpqi {
namespace {

struct Fixture {
  SignedAlphabet alphabet;
  Fixture() {
    alphabet.AddRelation("p");
    alphabet.AddRelation("q");
  }
  Nfa Compile(const std::string& text) {
    return MustCompileRegex(MustParseRegex(text), alphabet);
  }
};

/// Brute-force oracle: enumerate all variable assignments.
std::vector<std::vector<int>> BruteForceEval(const GraphDb& db,
                                             const ConjunctiveRpqi& query) {
  std::vector<std::vector<int>> results;
  std::vector<int> assignment(query.num_variables, 0);
  while (true) {
    bool all_atoms_hold = true;
    for (const CrpqAtom& atom : query.atoms) {
      if (!EvalRpqiPair(db, atom.automaton, assignment[atom.from_variable],
                        assignment[atom.to_variable])) {
        all_atoms_hold = false;
        break;
      }
    }
    if (all_atoms_hold) {
      std::vector<int> tuple;
      for (int v : query.distinguished) tuple.push_back(assignment[v]);
      results.push_back(tuple);
    }
    // Odometer.
    size_t i = 0;
    while (i < assignment.size() && ++assignment[i] == db.NumNodes()) {
      assignment[i] = 0;
      ++i;
    }
    if (i == assignment.size()) break;
  }
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

TEST(CrpqTest, SingleAtomReducesToRpqi) {
  Fixture f;
  GraphDb db;
  int x = db.AddNode("x"), y = db.AddNode("y"), z = db.AddNode("z");
  db.AddEdge(x, 0, y);
  db.AddEdge(y, 1, z);

  ConjunctiveRpqi query;
  query.num_variables = 2;
  query.atoms = {{0, f.Compile("p q"), 1}};
  query.distinguished = {0, 1};
  auto results = EvalCrpq(db, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<int>{x, z}));
}

TEST(CrpqTest, TriangleJoinWithInverse) {
  // q(x, z) ← p(x, y), p(y, z), p⁻*(z, x): a p-path of length 2 that can
  // walk back to its start.
  Fixture f;
  GraphDb db;
  int a = db.AddNode("a"), b = db.AddNode("b"), c = db.AddNode("c");
  int d = db.AddNode("d");
  db.AddEdge(a, 0, b);
  db.AddEdge(b, 0, c);
  db.AddEdge(b, 0, d);

  ConjunctiveRpqi query;
  query.num_variables = 3;
  query.atoms = {
      {0, f.Compile("p"), 1},
      {1, f.Compile("p"), 2},
      {2, f.Compile("(p^-)*"), 0},
  };
  query.distinguished = {0, 2};
  auto results = EvalCrpq(db, query);
  EXPECT_EQ(results, BruteForceEval(db, query));
  // (a,c) and (a,d) are the two-step endpoints; p⁻* from them reaches a.
  EXPECT_EQ(results.size(), 2u);
}

TEST(CrpqTest, SharedVariableConstrainsBothAtoms) {
  // q(y) ← p(x, y), q(x, y): y reachable from a common x by both relations.
  Fixture f;
  GraphDb db;
  int n0 = db.AddNode("n0"), n1 = db.AddNode("n1"), n2 = db.AddNode("n2");
  db.AddEdge(n0, 0, n1);  // p
  db.AddEdge(n0, 1, n1);  // q
  db.AddEdge(n0, 0, n2);  // p only
  ConjunctiveRpqi query;
  query.num_variables = 2;
  query.atoms = {{0, f.Compile("p"), 1}, {0, f.Compile("q"), 1}};
  query.distinguished = {1};
  auto results = EvalCrpq(db, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0][0], n1);
}

TEST(CrpqTest, SelfLoopAtom) {
  Fixture f;
  GraphDb db;
  int a = db.AddNode("a"), b = db.AddNode("b");
  db.AddEdge(a, 0, a);
  db.AddEdge(a, 0, b);
  ConjunctiveRpqi query;
  query.num_variables = 1;
  query.atoms = {{0, f.Compile("p"), 0}};
  query.distinguished = {0};
  auto results = EvalCrpq(db, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0][0], a);
}

TEST(CrpqTest, BooleanQueries) {
  Fixture f;
  GraphDb db;
  int a = db.AddNode("a"), b = db.AddNode("b");
  db.AddEdge(a, 0, b);
  ConjunctiveRpqi query;
  query.num_variables = 2;
  query.atoms = {{0, f.Compile("p p"), 1}};
  EXPECT_FALSE(CrpqSatisfiable(db, query));
  db.AddEdge(b, 0, a);
  EXPECT_TRUE(CrpqSatisfiable(db, query));
  // Boolean evaluation yields the empty tuple once satisfiable.
  auto results = EvalCrpq(db, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].empty());
}

TEST(CrpqTest, MatchesBruteForceOnRandomInstances) {
  std::mt19937_64 rng(401);
  Fixture f;
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 3;
  regex_options.inverse_probability = 0.3;
  for (int trial = 0; trial < 25; ++trial) {
    RandomGraphOptions graph_options;
    graph_options.num_nodes = 4;
    graph_options.num_relations = 2;
    GraphDb db = RandomGraph(rng, graph_options);

    ConjunctiveRpqi query;
    query.num_variables = 2 + static_cast<int>(rng() % 2);
    int num_atoms = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < num_atoms; ++i) {
      CrpqAtom atom;
      atom.from_variable = static_cast<int>(rng() % query.num_variables);
      atom.to_variable = static_cast<int>(rng() % query.num_variables);
      atom.automaton =
          MustCompileRegex(RandomRegex(rng, regex_options), f.alphabet);
      query.atoms.push_back(std::move(atom));
    }
    // Cover all variables with atoms to keep the oracle comparison simple.
    for (int v = 0; v < query.num_variables; ++v) {
      query.distinguished.push_back(v);
    }
    bool covered = true;
    std::vector<bool> seen(query.num_variables, false);
    for (const CrpqAtom& atom : query.atoms) {
      seen[atom.from_variable] = seen[atom.to_variable] = true;
    }
    for (bool s : seen) covered = covered && s;
    if (!covered) continue;

    EXPECT_EQ(EvalCrpq(db, query), BruteForceEval(db, query))
        << "trial " << trial;
  }
}

TEST(CrpqTest, FreeDistinguishedVariablesRangeOverAllNodes) {
  Fixture f;
  GraphDb db;
  int a = db.AddNode("a"), b = db.AddNode("b");
  db.AddEdge(a, 0, b);
  ConjunctiveRpqi query;
  query.num_variables = 2;  // variable 1 appears in no atom
  query.atoms = {{0, f.Compile("p"), 0}};  // unsatisfiable self-loop...
  query.atoms[0] = {0, f.Compile("p p^-"), 0};  // satisfiable round trip
  query.distinguished = {0, 1};
  auto results = EvalCrpq(db, query);
  // Variable 0 = a (round trip); variable 1 free over {a, b}.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (std::vector<int>{a, a}));
  EXPECT_EQ(results[1], (std::vector<int>{a, b}));
}

}  // namespace
}  // namespace rpqi
