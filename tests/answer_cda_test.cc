#include <gtest/gtest.h>

#include <random>

#include "answer/cda.h"
#include "answer/views.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/regex_gen.h"

namespace rpqi {
namespace {

struct Builder {
  SignedAlphabet alphabet;
  AnsweringInstance instance;

  explicit Builder(int num_objects, const std::string& query_text,
                   const std::vector<std::string>& relations = {"p"}) {
    for (const std::string& r : relations) alphabet.AddRelation(r);
    instance.num_objects = num_objects;
    instance.query = MustCompileRegex(MustParseRegex(query_text), alphabet);
  }

  void AddView(const std::string& definition_text,
               std::vector<std::pair<int, int>> extension,
               ViewAssumption assumption) {
    View view;
    view.definition =
        MustCompileRegex(MustParseRegex(definition_text), alphabet);
    view.extension = std::move(extension);
    view.assumption = assumption;
    instance.views.push_back(std::move(view));
  }
};

bool Certain(const AnsweringInstance& instance, int c, int d) {
  StatusOr<CdaResult> result = CertainAnswerCda(instance, c, d);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->certain;
}

bool Possible(const AnsweringInstance& instance, int c, int d) {
  StatusOr<CdaResult> result = PossibleAnswerCda(instance, c, d);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->certain;
}

TEST(CdaTest, SoundSingleEdgeViewsForceAnswers) {
  Builder b(3, "p p");
  b.AddView("p", {{0, 1}, {1, 2}}, ViewAssumption::kSound);
  // Every consistent database contains the edges 0→1 and 1→2.
  EXPECT_TRUE(Certain(b.instance, 0, 2));
  EXPECT_FALSE(Certain(b.instance, 0, 1));
  EXPECT_FALSE(Certain(b.instance, 2, 0));
}

TEST(CdaTest, SoundViewsNeverForceAbsence) {
  Builder b(2, "p");
  b.AddView("p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 1));
  // (1,0) holds in some consistent databases but not all.
  EXPECT_FALSE(Certain(b.instance, 1, 0));
  EXPECT_TRUE(Possible(b.instance, 1, 0));
}

TEST(CdaTest, ExactViewPinsTheRelation) {
  Builder b(3, "p");
  b.AddView("p", {{0, 1}}, ViewAssumption::kExact);
  // def(V) = p and the view is exact, so the p-edges are exactly {0→1}.
  EXPECT_TRUE(Certain(b.instance, 0, 1));
  EXPECT_FALSE(Certain(b.instance, 1, 2));
  EXPECT_FALSE(Possible(b.instance, 1, 2));
}

TEST(CdaTest, ExactViewWithInverseQuery) {
  Builder b(2, "p p^-");
  b.AddView("p", {{0, 1}}, ViewAssumption::kExact);
  EXPECT_TRUE(Certain(b.instance, 0, 0));
  EXPECT_FALSE(Certain(b.instance, 0, 1));
}

TEST(CdaTest, CompleteViewAllowsEmptyDatabase) {
  Builder b(2, "p");
  b.AddView("p", {{0, 1}}, ViewAssumption::kComplete);
  EXPECT_FALSE(Certain(b.instance, 0, 1));
  EXPECT_TRUE(Possible(b.instance, 0, 1));
  EXPECT_FALSE(Possible(b.instance, 1, 0));
}

TEST(CdaTest, InconsistentViewsMakeEverythingCertain) {
  Builder b(2, "p");
  // ans(p) = {(0,1)} and ans(p) = {} cannot both hold.
  b.AddView("p", {{0, 1}}, ViewAssumption::kExact);
  b.AddView("p", {}, ViewAssumption::kExact);
  EXPECT_TRUE(Certain(b.instance, 1, 0));
  EXPECT_FALSE(Possible(b.instance, 0, 1));
}

TEST(CdaTest, ClosedDomainRoutesPathsThroughNamedObjects) {
  // Sound view: a p p path from 0 to 1. Under CDA the midpoint must be one
  // of the two objects, and either choice creates a p-edge leaving 0 and a
  // p-edge entering 1… but which single p-edge is certain? None — yet the
  // query p p itself is certain by the view, and p p p p is certain too
  // (any midpoint choice yields a cycle-free or cyclic route of length ≥ 2
  // from 0 — e.g. midpoint 0 gives 0→0→1, so 0→0→0→1 works; midpoint 1
  // gives 0→1→1, so 0→1→1→1 works).
  Builder b(2, "p p p");
  b.AddView("p p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 1));

  Builder direct(2, "p p");
  direct.AddView("p p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(direct.instance, 0, 1));
}

TEST(CdaTest, ClosedDomainCertainButOpenWouldNot) {
  // The CDA-only consequence: a p p path from 0 to 1 with both objects in
  // D_V = {0,1} forces SOME p-edge 0→x with x ∈ {0,1} and some p-edge y→1;
  // in both midpoint cases the edge 0→1… no: midpoint 0 means edges 0→0 and
  // 0→1; midpoint 1 means edges 0→1 and 1→1. Either way 0→1 is present!
  Builder b(2, "p");
  b.AddView("p p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 1));
}

TEST(CdaTest, AgreesWithBruteForceOnRandomInstances) {
  std::mt19937_64 rng(79);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p"};
  regex_options.target_size = 4;
  regex_options.inverse_probability = 0.3;

  SignedAlphabet alphabet;
  alphabet.AddRelation("p");

  for (int trial = 0; trial < 25; ++trial) {
    AnsweringInstance instance;
    instance.num_objects = 2 + static_cast<int>(rng() % 2);  // 2..3 objects
    instance.query =
        MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    int num_views = 1 + static_cast<int>(rng() % 2);
    for (int v = 0; v < num_views; ++v) {
      View view;
      RandomRegexOptions view_options = regex_options;
      view_options.target_size = 2;
      view.definition =
          MustCompileRegex(RandomRegex(rng, view_options), alphabet);
      int num_pairs = static_cast<int>(rng() % 3);
      for (int i = 0; i < num_pairs; ++i) {
        view.extension.push_back(
            {static_cast<int>(rng() % instance.num_objects),
             static_cast<int>(rng() % instance.num_objects)});
      }
      switch (rng() % 3) {
        case 0: view.assumption = ViewAssumption::kSound; break;
        case 1: view.assumption = ViewAssumption::kComplete; break;
        default: view.assumption = ViewAssumption::kExact; break;
      }
      instance.views.push_back(std::move(view));
    }
    for (int c = 0; c < instance.num_objects; ++c) {
      for (int d = 0; d < instance.num_objects; ++d) {
        StatusOr<CdaResult> solver = CertainAnswerCda(instance, c, d);
        ASSERT_TRUE(solver.ok());
        bool brute = CertainAnswerCdaBruteForce(instance, c, d);
        EXPECT_EQ(solver->certain, brute)
            << "trial " << trial << " pair (" << c << "," << d << ")";
      }
    }
  }
}

TEST(CdaTest, CounterexampleIsConsistentAndExcludesPair) {
  Builder b(3, "p p", {"p", "q"});
  b.AddView("p", {{0, 1}}, ViewAssumption::kSound);
  b.AddView("q", {{1, 2}}, ViewAssumption::kSound);
  StatusOr<CdaResult> result = CertainAnswerCda(b.instance, 0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->certain);
  ASSERT_TRUE(result->witness.has_value());
  // The witness contains the forced edges but no p-path 0→2.
  EXPECT_TRUE(result->witness->HasEdge(0, 0, 1));
  EXPECT_TRUE(result->witness->HasEdge(1, 1, 2));
}

TEST(CdaTest, NormalizeCompleteViewsPreservesAnswers) {
  std::mt19937_64 rng(83);
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p"};
  regex_options.target_size = 3;
  regex_options.inverse_probability = 0.25;
  for (int trial = 0; trial < 10; ++trial) {
    AnsweringInstance instance;
    instance.num_objects = 2;
    instance.query =
        MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    View view;
    view.definition =
        MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
    if (rng() % 2) view.extension.push_back({0, 1});
    view.assumption = ViewAssumption::kComplete;
    instance.views.push_back(std::move(view));

    AnsweringInstance normalized = NormalizeCompleteViews(instance);
    ASSERT_EQ(normalized.views[0].assumption, ViewAssumption::kExact);
    for (int c = 0; c < 2; ++c) {
      for (int d = 0; d < 2; ++d) {
        StatusOr<CdaResult> original = CertainAnswerCda(instance, c, d);
        StatusOr<CdaResult> converted = CertainAnswerCda(normalized, c, d);
        ASSERT_TRUE(original.ok());
        ASSERT_TRUE(converted.ok());
        EXPECT_EQ(original->certain, converted->certain) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace rpqi
