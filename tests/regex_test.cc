#include <gtest/gtest.h>

#include "regex/ast.h"
#include "regex/parser.h"
#include "regex/printer.h"

namespace rpqi {
namespace {

TEST(RegexParserTest, ParsesPaperExample1) {
  RegexPtr e =
      MustParseRegex("(hasSubmodule^-)* (containsVar | hasSubmodule)");
  EXPECT_EQ(e->kind, RegexKind::kConcat);
  EXPECT_EQ(e->left->kind, RegexKind::kStar);
  EXPECT_EQ(e->left->left->kind, RegexKind::kAtom);
  EXPECT_TRUE(e->left->left->atom_inverse);
  EXPECT_EQ(e->right->kind, RegexKind::kUnion);
}

TEST(RegexParserTest, PostfixOperators) {
  RegexPtr plus = MustParseRegex("a+");
  // a+ expands to a · a*.
  EXPECT_EQ(plus->kind, RegexKind::kConcat);
  EXPECT_EQ(plus->right->kind, RegexKind::kStar);

  RegexPtr optional = MustParseRegex("a?");
  EXPECT_EQ(optional->kind, RegexKind::kUnion);
  EXPECT_EQ(optional->right->kind, RegexKind::kEpsilon);
}

TEST(RegexParserTest, EpsilonAndEmptyTokens) {
  EXPECT_EQ(MustParseRegex("%eps")->kind, RegexKind::kEpsilon);
  EXPECT_EQ(MustParseRegex("%epsilon")->kind, RegexKind::kEpsilon);
  EXPECT_EQ(MustParseRegex("%empty")->kind, RegexKind::kEmptySet);
}

TEST(RegexParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRegex("(a").ok());
  EXPECT_FALSE(ParseRegex("a |").ok());
  EXPECT_FALSE(ParseRegex("a ^ b").ok());
  EXPECT_FALSE(ParseRegex("%bogus").ok());
  EXPECT_FALSE(ParseRegex("a ) b").ok());
  EXPECT_FALSE(ParseRegex("*").ok());
}

TEST(RegexParserTest, GroupInverseAppliesInvTransform) {
  // (a b)^- = b^- a^-.
  RegexPtr e = MustParseRegex("(a b)^-");
  EXPECT_EQ(e->kind, RegexKind::kConcat);
  EXPECT_EQ(e->left->atom_name, "b");
  EXPECT_TRUE(e->left->atom_inverse);
  EXPECT_EQ(e->right->atom_name, "a");
  EXPECT_TRUE(e->right->atom_inverse);
}

TEST(RegexInvTest, FollowsPaperEquations) {
  // inv(a) = a⁻, inv(a⁻) = a.
  EXPECT_TRUE(Inv(RAtom("a"))->atom_inverse);
  EXPECT_FALSE(Inv(RAtom("a", true))->atom_inverse);
  // inv(e1 · e2) = inv(e2) · inv(e1).
  RegexPtr cat = Inv(MustParseRegex("a b"));
  EXPECT_EQ(cat->left->atom_name, "b");
  EXPECT_EQ(cat->right->atom_name, "a");
  // inv(e*) = inv(e)*.
  EXPECT_EQ(Inv(MustParseRegex("a*"))->kind, RegexKind::kStar);
  // inv is an involution.
  RegexPtr e = MustParseRegex("(a b^-)* (c | d)+");
  EXPECT_EQ(RegexToString(Inv(Inv(e))), RegexToString(e));
}

TEST(RegexPrinterTest, RoundTripsThroughParser) {
  for (const char* text : {
           "a",
           "a^-",
           "a b c",
           "a | b | c",
           "(a | b) c",
           "(a b | c)* d^-",
           "(hasSubmodule^-)* (containsVar | hasSubmodule)",
           "%eps | a",
       }) {
    RegexPtr once = MustParseRegex(text);
    RegexPtr twice = MustParseRegex(RegexToString(once));
    EXPECT_EQ(RegexToString(once), RegexToString(twice)) << text;
  }
}

TEST(RegexSimplificationTest, EmptySetAndEpsilonIdentities) {
  EXPECT_EQ(RConcat(REmpty(), RAtom("a"))->kind, RegexKind::kEmptySet);
  EXPECT_EQ(RConcat(REpsilon(), RAtom("a"))->atom_name, "a");
  EXPECT_EQ(RUnion(REmpty(), RAtom("a"))->atom_name, "a");
  EXPECT_EQ(RStar(REmpty())->kind, RegexKind::kEpsilon);
  EXPECT_EQ(RStar(RStar(RAtom("a")))->left->kind, RegexKind::kAtom);
}

TEST(RegexSizeTest, CountsNodes) {
  EXPECT_EQ(RegexSize(RAtom("a")), 1);
  EXPECT_EQ(RegexSize(MustParseRegex("a b")), 3);
  EXPECT_EQ(RegexSize(MustParseRegex("(a | b)*")), 4);
}

TEST(CollectAtomNamesTest, DistinctNamesInOrder) {
  std::vector<std::string> names;
  CollectAtomNames(MustParseRegex("a b^- a (c | b)"), &names);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace rpqi
