#include <gtest/gtest.h>

#include <random>

#include "automata/lazy.h"
#include "automata/nfa.h"
#include "automata/ops.h"
#include "automata/pair_complement.h"
#include "automata/random.h"
#include "automata/table_dfa.h"
#include "automata/two_way.h"

namespace rpqi {
namespace {

/// A handwritten two-way automaton over {0,1} that accepts words whose first
/// and last symbols agree. It guesses the last cell: walk right remembering
/// the first symbol, nondeterministically compare-and-step-right into a state
/// with no transitions — that state survives only past the true end. To make
/// the automaton genuinely two-way, the comparison re-checks the first symbol
/// by walking all the way back left and forth again.
TwoWayNfa FirstEqualsLastAutomaton() {
  TwoWayNfa automaton(2);
  const int start = automaton.AddState();    // records the first symbol
  const int scan0 = automaton.AddState();    // first symbol was 0
  const int scan1 = automaton.AddState();    // first symbol was 1
  const int back0 = automaton.AddState();    // re-verify: rewind to cell 0
  const int fwd0 = automaton.AddState();     // re-verified; scan right again
  const int accept = automaton.AddState();   // stuck unless past the end
  automaton.SetInitial(start);
  automaton.SetAccepting(accept);

  automaton.AddTransition(start, 0, scan0, Move::kStay);
  automaton.AddTransition(start, 1, scan1, Move::kStay);
  for (int symbol = 0; symbol < 2; ++symbol) {
    automaton.AddTransition(scan0, symbol, scan0, Move::kRight);
    automaton.AddTransition(scan1, symbol, scan1, Move::kRight);
    // scan0 may detour: rewind to the first cell and re-check it is a 0
    // (exercises left moves; semantically a no-op).
    automaton.AddTransition(scan0, symbol, back0, Move::kLeft);
    automaton.AddTransition(back0, symbol, back0, Move::kLeft);
    automaton.AddTransition(fwd0, symbol, fwd0, Move::kRight);
    automaton.AddTransition(fwd0, symbol, scan0, Move::kStay);
  }
  automaton.AddTransition(back0, 0, fwd0, Move::kStay);
  // Guess "this is the last cell": compare with the remembered first symbol.
  automaton.AddTransition(scan0, 0, accept, Move::kRight);
  automaton.AddTransition(scan1, 1, accept, Move::kRight);
  return automaton;
}

TEST(TwoWaySimulateTest, FirstEqualsLast) {
  TwoWayNfa automaton = FirstEqualsLastAutomaton();
  EXPECT_TRUE(SimulateTwoWay(automaton, {0}));
  EXPECT_TRUE(SimulateTwoWay(automaton, {1, 0, 1}));
  EXPECT_TRUE(SimulateTwoWay(automaton, {0, 1, 1, 0}));
  EXPECT_FALSE(SimulateTwoWay(automaton, {0, 1}));
  EXPECT_FALSE(SimulateTwoWay(automaton, {1, 1, 0}));
  EXPECT_FALSE(SimulateTwoWay(automaton, {}));
}

/// One-way automata embed into two-way automata: every NFA transition becomes
/// a right move.
TwoWayNfa EmbedOneWay(const Nfa& input) {
  Nfa nfa = RemoveEpsilon(input);
  TwoWayNfa automaton(nfa.num_symbols());
  for (int s = 0; s < nfa.NumStates(); ++s) automaton.AddState();
  for (int s = 0; s < nfa.NumStates(); ++s) {
    automaton.SetInitial(s, nfa.IsInitial(s));
    automaton.SetAccepting(s, nfa.IsAccepting(s));
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      automaton.AddTransition(s, t.symbol, t.to, Move::kRight);
    }
  }
  return automaton;
}

TEST(TwoWaySimulateTest, AgreesWithOneWayEmbedding) {
  std::mt19937_64 rng(5);
  RandomAutomatonOptions options;
  options.num_states = 5;
  options.num_symbols = 2;
  for (int trial = 0; trial < 40; ++trial) {
    Nfa nfa = RandomNfa(rng, options);
    TwoWayNfa embedded = EmbedOneWay(nfa);
    for (int i = 0; i < 25; ++i) {
      std::vector<int> word = RandomWord(rng, 2, i % 7);
      EXPECT_EQ(SimulateTwoWay(embedded, word), Accepts(nfa, word));
    }
  }
}

bool TableDfaAccepts(LazyTableDfa& dfa, const std::vector<int>& word) {
  int state = dfa.StartState();
  for (int symbol : word) state = dfa.Step(state, symbol);
  return dfa.IsAccepting(state);
}

TEST(TableDfaTest, MatchesSimulationOnHandwrittenAutomaton) {
  TwoWayNfa automaton = FirstEqualsLastAutomaton();
  LazyTableDfa table(automaton);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<int> word = RandomWord(rng, 2, i % 9);
    EXPECT_EQ(TableDfaAccepts(table, word), SimulateTwoWay(automaton, word));
  }
}

TEST(TableDfaTest, MatchesSimulationOnRandomAutomata) {
  std::mt19937_64 rng(13);
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  options.transition_density = 1.2;
  for (int trial = 0; trial < 60; ++trial) {
    TwoWayNfa automaton = RandomTwoWayNfa(rng, options);
    LazyTableDfa table(automaton);
    for (int i = 0; i < 30; ++i) {
      std::vector<int> word = RandomWord(rng, 2, i % 8);
      EXPECT_EQ(TableDfaAccepts(table, word), SimulateTwoWay(automaton, word))
          << "trial " << trial;
    }
  }
}

TEST(TableDfaTest, ComplementFlipsEveryWord) {
  std::mt19937_64 rng(17);
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  for (int trial = 0; trial < 20; ++trial) {
    TwoWayNfa automaton = RandomTwoWayNfa(rng, options);
    LazyTableDfa accept(automaton, /*complement=*/false);
    LazyTableDfa reject(automaton, /*complement=*/true);
    for (int i = 0; i < 20; ++i) {
      std::vector<int> word = RandomWord(rng, 2, i % 6);
      EXPECT_NE(TableDfaAccepts(accept, word), TableDfaAccepts(reject, word));
    }
  }
}

TEST(VardiComplementTest, MatchesTableComplementOnRandomAutomata) {
  std::mt19937_64 rng(29);
  RandomAutomatonOptions options;
  options.num_states = 3;
  options.num_symbols = 2;
  options.transition_density = 1.0;
  for (int trial = 0; trial < 25; ++trial) {
    TwoWayNfa automaton = RandomTwoWayNfa(rng, options);
    StatusOr<Nfa> complement = VardiComplement(automaton, 1 << 18);
    ASSERT_TRUE(complement.ok()) << complement.status().ToString();
    for (int i = 0; i < 25; ++i) {
      std::vector<int> word = RandomWord(rng, 2, i % 6);
      EXPECT_EQ(Accepts(*complement, word), !SimulateTwoWay(automaton, word))
          << "trial " << trial;
    }
  }
}

TEST(VardiComplementTest, HandwrittenAutomaton) {
  TwoWayNfa automaton = FirstEqualsLastAutomaton();
  StatusOr<Nfa> complement = VardiComplement(automaton, 1 << 20);
  ASSERT_TRUE(complement.ok());
  EXPECT_FALSE(Accepts(*complement, {0, 1, 0}));
  EXPECT_TRUE(Accepts(*complement, {0, 1}));
  EXPECT_TRUE(Accepts(*complement, {}));
}

TEST(TwoWayBasicsTest, EmptyWordAcceptance) {
  TwoWayNfa automaton(1);
  int s = automaton.AddState();
  automaton.SetInitial(s);
  EXPECT_FALSE(SimulateTwoWay(automaton, {}));
  automaton.SetAccepting(s);
  EXPECT_TRUE(SimulateTwoWay(automaton, {}));
  LazyTableDfa table(automaton);
  EXPECT_TRUE(table.IsAccepting(table.StartState()));
}

TEST(TwoWayBasicsTest, FallingOffLeftEndIsUnavailable) {
  // One state that always moves left: can never get past the first cell, so
  // it never reaches the end and never accepts a nonempty word.
  TwoWayNfa automaton(1);
  int s = automaton.AddState();
  automaton.SetInitial(s);
  automaton.SetAccepting(s);
  automaton.AddTransition(s, 0, s, Move::kLeft);
  EXPECT_TRUE(SimulateTwoWay(automaton, {}));
  EXPECT_FALSE(SimulateTwoWay(automaton, {0}));
  EXPECT_FALSE(SimulateTwoWay(automaton, {0, 0}));
}

}  // namespace
}  // namespace rpqi
