#include <gtest/gtest.h>

#include <random>

#include "answer/cda.h"
#include "answer/linearize.h"
#include "answer/oda.h"
#include "answer/views.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "graphdb/eval.h"
#include "obs/metrics.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/regex_gen.h"

namespace rpqi {
namespace {

struct Builder {
  SignedAlphabet alphabet;
  AnsweringInstance instance;

  explicit Builder(int num_objects, const std::string& query_text,
                   const std::vector<std::string>& relations = {"p"}) {
    for (const std::string& r : relations) alphabet.AddRelation(r);
    instance.num_objects = num_objects;
    instance.query = MustCompileRegex(MustParseRegex(query_text), alphabet);
  }

  void AddView(const std::string& definition_text,
               std::vector<std::pair<int, int>> extension,
               ViewAssumption assumption) {
    View view;
    view.definition =
        MustCompileRegex(MustParseRegex(definition_text), alphabet);
    view.extension = std::move(extension);
    view.assumption = assumption;
    instance.views.push_back(std::move(view));
  }
};

bool Certain(const AnsweringInstance& instance, int c, int d) {
  StatusOr<OdaResult> result = CertainAnswerOda(instance, c, d);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->certain;
}

bool Possible(const AnsweringInstance& instance, int c, int d) {
  StatusOr<OdaResult> result = PossibleAnswerOda(instance, c, d);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->certain;
}

// ---------------------------------------------------------------------------
// Linearization plumbing

TEST(LinearizeTest, WordRoundTrip) {
  LinearAlphabet alphabet{/*sigma_symbols=*/4, /*num_objects=*/3};
  std::vector<CanonicalBlock> blocks = {
      {0, {0, 2}, 1},   // obj0 --p--> anon --q--> obj1
      {1, {1}, 2},      // obj2 --p--> obj1 written backwards (p⁻)
      {2, {}, 2},       // mention block
  };
  std::vector<int> word = CanonicalDbToWord(blocks, alphabet);
  StatusOr<GraphDb> db = WordToCanonicalDb(word, alphabet);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumNodes(), 4);  // 3 objects + 1 anonymous
  EXPECT_EQ(db->NumEdges(), 3);
  EXPECT_TRUE(db->HasEdge(0, 0, 3));  // obj0 --p--> anon
  EXPECT_TRUE(db->HasEdge(3, 1, 1));  // anon --q--> obj1
  EXPECT_TRUE(db->HasEdge(2, 0, 1));  // obj2 --p--> obj1 (from the p⁻ label)
}

TEST(LinearizeTest, RejectsMalformedWords) {
  LinearAlphabet alphabet{2, 2};
  int dollar = alphabet.DollarSymbol();
  int obj0 = alphabet.ObjectSymbol(0);
  int obj1 = alphabet.ObjectSymbol(1);
  EXPECT_FALSE(WordToCanonicalDb({}, alphabet).ok());
  EXPECT_FALSE(WordToCanonicalDb({obj0}, alphabet).ok());
  EXPECT_FALSE(WordToCanonicalDb({dollar, obj0, obj1, dollar}, alphabet).ok())
      << "empty block may not identify two objects";
  EXPECT_FALSE(WordToCanonicalDb({dollar, obj0, 0}, alphabet).ok());
  EXPECT_TRUE(WordToCanonicalDb({dollar}, alphabet).ok());
  EXPECT_TRUE(
      WordToCanonicalDb({dollar, obj0, 0, obj1, dollar}, alphabet).ok());
}

TEST(LinearizeTest, StructureAutomatonMatchesDecoder) {
  LinearAlphabet alphabet{2, 2};
  Nfa structure = BuildStructureAutomaton(alphabet);
  std::mt19937_64 rng(89);
  int accepted = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<int> word =
        RandomWord(rng, alphabet.TotalSymbols(), 1 + i % 7);
    bool structurally_ok = Accepts(structure, word);
    bool decodable = WordToCanonicalDb(word, alphabet).ok();
    EXPECT_EQ(structurally_ok, decodable) << "word " << i;
    if (structurally_ok) ++accepted;
  }
  EXPECT_GT(accepted, 0);
}

// ---------------------------------------------------------------------------
// Theorem 14: the linearized evaluation automaton against the graph evaluator

TEST(LinearizedEvalTest, MatchesGraphEvaluationOnRandomCanonicalDbs) {
  std::mt19937_64 rng(97);
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  sigma.AddRelation("q");
  LinearAlphabet alphabet{sigma.NumSymbols(), 3};

  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 4;
  regex_options.inverse_probability = 0.35;

  for (int trial = 0; trial < 25; ++trial) {
    // Random canonical database with 2–4 blocks over 3 objects.
    std::vector<CanonicalBlock> blocks;
    // Mention blocks guarantee every object occurs.
    for (int object = 0; object < alphabet.num_objects; ++object) {
      blocks.push_back({object, {}, object});
    }
    int extra = 2 + static_cast<int>(rng() % 3);
    for (int i = 0; i < extra; ++i) {
      CanonicalBlock block;
      block.from = static_cast<int>(rng() % alphabet.num_objects);
      block.to = static_cast<int>(rng() % alphabet.num_objects);
      int len = 1 + static_cast<int>(rng() % 3);
      for (int j = 0; j < len; ++j) {
        block.labels.push_back(
            static_cast<int>(rng() % alphabet.sigma_symbols));
      }
      blocks.push_back(block);
    }
    std::vector<int> word = CanonicalDbToWord(blocks, alphabet);
    GraphDb db = BlocksToDb(blocks, alphabet);

    Nfa definition = MustCompileRegex(RandomRegex(rng, regex_options), sigma);
    for (int a = 0; a < alphabet.num_objects; ++a) {
      for (int b = 0; b < alphabet.num_objects; ++b) {
        LinearEvalSpec spec;
        spec.start = LinearEvalSpec::Start::kAtConstant;
        spec.start_constant = a;
        spec.end = LinearEvalSpec::End::kAtConstant;
        spec.end_constant = b;
        TwoWayNfa automaton =
            BuildLinearizedEvalAutomaton(definition, alphabet, spec);
        EXPECT_EQ(SimulateTwoWay(automaton, word),
                  EvalRpqiPair(db, definition, a, b))
            << "trial " << trial << " pair (" << a << "," << b << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Certain answers under ODA

TEST(OdaTest, SoundSingleEdgeViewsForceAnswers) {
  Builder b(3, "p p");
  b.AddView("p", {{0, 1}, {1, 2}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 2));
  EXPECT_FALSE(Certain(b.instance, 2, 0));
  EXPECT_FALSE(Certain(b.instance, 0, 1));
}

TEST(OdaTest, AnonymousMidpointsBreakCdaOnlyConsequences) {
  // Sound view with def p p and ext {(0,1)}: under CDA the midpoint of the
  // path must be 0 or 1, forcing the edge 0→1 in every consistent database;
  // under ODA the midpoint may be anonymous, so p is NOT certain — the
  // classical CDA/ODA separation.
  Builder cda_and_oda(2, "p");
  cda_and_oda.AddView("p p", {{0, 1}}, ViewAssumption::kSound);

  StatusOr<CdaResult> cda = CertainAnswerCda(cda_and_oda.instance, 0, 1);
  ASSERT_TRUE(cda.ok());
  EXPECT_TRUE(cda->certain);

  StatusOr<OdaResult> oda = CertainAnswerOda(cda_and_oda.instance, 0, 1);
  ASSERT_TRUE(oda.ok());
  EXPECT_FALSE(oda->certain);
  ASSERT_TRUE(oda->counterexample.has_value());
  // The counterexample routes the p p path through an anonymous node.
  EXPECT_TRUE(VerifyOdaCounterexample(cda_and_oda.instance, 0, 1,
                                      *oda->counterexample));
  EXPECT_GT(oda->counterexample->NumNodes(), 2);
}

TEST(OdaTest, QueryStillCertainThroughAnonymousMidpoint) {
  Builder b(2, "p p");
  b.AddView("p p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 1));
}

TEST(OdaTest, InverseQueryOverSoundViews) {
  Builder b(2, "p^-");
  b.AddView("p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 1, 0));
  EXPECT_FALSE(Certain(b.instance, 0, 1));
}

TEST(OdaTest, RoundTripQueryIsCertain) {
  Builder b(2, "p p^-");
  b.AddView("p", {{0, 1}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 0));
  EXPECT_FALSE(Certain(b.instance, 1, 1));  // no forced edge out of 1
}

TEST(OdaTest, ExactViewPinsTheRelation) {
  Builder b(3, "p");
  b.AddView("p", {{0, 1}}, ViewAssumption::kExact);
  EXPECT_TRUE(Certain(b.instance, 0, 1));
  EXPECT_FALSE(Certain(b.instance, 1, 2));
  EXPECT_FALSE(Possible(b.instance, 1, 2));
  // With the only p-edge pinned to 0→1, p p has no answers at all.
  Builder two(3, "p p");
  two.AddView("p", {{0, 1}}, ViewAssumption::kExact);
  EXPECT_FALSE(Possible(two.instance, 0, 2));
}

TEST(OdaTest, ExactViewForbidsAnonymousWitnesses) {
  // def p, exact ext {(0,1)}: the database may not contain any other p-edge,
  // not even touching anonymous nodes; so a sound view requiring a p p path
  // from 0 is inconsistent and everything becomes certain.
  Builder b(2, "p");
  b.AddView("p", {{0, 1}}, ViewAssumption::kExact);
  b.AddView("p p", {{0, 0}}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 1, 0));  // vacuously: no consistent DB
  EXPECT_FALSE(Possible(b.instance, 0, 1));
}

TEST(OdaTest, CompleteViewAllowsEmptyDatabase) {
  Builder b(2, "p");
  b.AddView("p", {{0, 1}}, ViewAssumption::kComplete);
  EXPECT_FALSE(Certain(b.instance, 0, 1));
  EXPECT_TRUE(Possible(b.instance, 0, 1));
  EXPECT_FALSE(Possible(b.instance, 1, 0));
}

TEST(OdaTest, EpsilonQueryIsCertainOnDiagonalOnly) {
  Builder b(2, "p*");
  b.AddView("p", {}, ViewAssumption::kSound);
  EXPECT_TRUE(Certain(b.instance, 0, 0));
  EXPECT_TRUE(Certain(b.instance, 1, 1));
  EXPECT_FALSE(Certain(b.instance, 0, 1));
}

TEST(OdaTest, CounterexamplesVerifyIndependently) {
  std::mt19937_64 rng(101);
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p"};
  regex_options.target_size = 3;
  regex_options.inverse_probability = 0.3;
  int not_certain_seen = 0;
  for (int trial = 0; trial < 15; ++trial) {
    AnsweringInstance instance;
    instance.num_objects = 2;
    instance.query = MustCompileRegex(RandomRegex(rng, regex_options), sigma);
    View view;
    view.definition = MustCompileRegex(RandomRegex(rng, regex_options), sigma);
    view.extension = {{0, 1}};
    view.assumption =
        (rng() % 2) ? ViewAssumption::kSound : ViewAssumption::kExact;
    instance.views.push_back(std::move(view));

    StatusOr<OdaResult> result = CertainAnswerOda(instance, 0, 1);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!result->certain) {
      ++not_certain_seen;
      ASSERT_TRUE(result->counterexample.has_value());
      // CertainAnswerOda already verifies internally (verify_witness=true);
      // re-verify here explicitly against the normalized instance.
      EXPECT_TRUE(
          VerifyOdaCounterexample(instance, 0, 1, *result->counterexample));
    }
  }
  EXPECT_GT(not_certain_seen, 0);
}

TEST(OdaTest, CertainImpliesCdaCertain) {
  // Every CDA-consistent database is also ODA-consistent (ODA only enlarges
  // the space of candidate databases), so ODA-certain ⊆ CDA-certain… in fact
  // ODA-certain ⇒ CDA-certain. Cross-check on random sound-view instances.
  std::mt19937_64 rng(103);
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p"};
  regex_options.target_size = 3;
  regex_options.inverse_probability = 0.3;
  for (int trial = 0; trial < 12; ++trial) {
    AnsweringInstance instance;
    instance.num_objects = 2;
    instance.query = MustCompileRegex(RandomRegex(rng, regex_options), sigma);
    View view;
    RandomRegexOptions view_options = regex_options;
    view_options.target_size = 2;
    view.definition =
        MustCompileRegex(RandomRegex(rng, view_options), sigma);
    view.extension = {{0, 1}};
    view.assumption = ViewAssumption::kSound;
    instance.views.push_back(std::move(view));

    for (int c = 0; c < 2; ++c) {
      for (int d = 0; d < 2; ++d) {
        StatusOr<OdaResult> oda = CertainAnswerOda(instance, c, d);
        ASSERT_TRUE(oda.ok());
        if (oda->certain) {
          StatusOr<CdaResult> cda = CertainAnswerCda(instance, c, d);
          ASSERT_TRUE(cda.ok());
          EXPECT_TRUE(cda->certain)
              << "trial " << trial << " pair (" << c << "," << d << ")";
        }
      }
    }
  }
}

TEST(OdaSolverTest, RepeatedProbesReportIdenticalCounters) {
  // Regression test for the accounting sweep: the solver amortizes the view
  // context across probes, and a repeated probe must report the same
  // exploration counters every time — earlier probes must not leak carried
  // or cached work into later ones.
  Builder builder(2, "p p p");
  builder.AddView("p p p", {{0, 1}}, ViewAssumption::kExact);
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  OdaSolver solver(builder.instance);
  StatusOr<OdaResult> first = solver.CertainAnswer(0, 1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  StatusOr<OdaResult> second = solver.CertainAnswer(0, 1);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  StatusOr<OdaResult> third = solver.CertainAnswer(0, 1);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE(first->certain);
  EXPECT_EQ(first->certain, second->certain);
  EXPECT_EQ(second->certain, third->certain);
  // The first probe may pay one-time context construction, but probes two
  // and three take the identical path and must agree exactly.
  EXPECT_EQ(second->states_explored, third->states_explored);
  EXPECT_EQ(second->states_pruned, third->states_pruned);
  EXPECT_EQ(second->antichain_size, third->antichain_size);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("oda.probes"), 3);
}

TEST(OdaSolverTest, OverflowingQuickSearchStillCountsItsWork) {
  // Regression test: when the bounded phase-1 witness search overflows its
  // state cap and the probe is decided by the exact phase 2, the quick
  // search's explored/pruned counters used to be dropped on the floor. The
  // final accounting must include them: with a cap of kCap, an overflowing
  // probe must report strictly more than kCap explored states even though
  // the phase-2 decision automaton alone is far smaller.
  Builder builder(2, "p p p");
  builder.AddView("p p p", {{0, 1}}, ViewAssumption::kExact);
  constexpr int64_t kCap = 4096;
  OdaOptions options;
  options.max_states = kCap;
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  StatusOr<OdaResult> result = CertainAnswerOda(builder.instance, 0, 1,
                                                options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->certain);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  ASSERT_EQ(delta.CounterValue("oda.phase1_overflows"), 1)
      << "instance no longer overflows phase 1; pick a harder one";
  EXPECT_GT(result->states_explored, kCap);
}

}  // namespace
}  // namespace rpqi
