#include <gtest/gtest.h>

#include <random>

#include "automata/random.h"
#include "fault/fault.h"
#include "graphdb/eval.h"
#include "graphdb/graph.h"
#include "graphdb/io.h"
#include "graphdb/views.h"
#include "regex/parser.h"
#include "rpq/compile.h"
#include "rpq/satisfaction.h"
#include "workload/graph_gen.h"
#include "workload/scenario.h"

namespace rpqi {
namespace {

TEST(GraphDbTest, NodesAndEdges) {
  GraphDb db;
  int x = db.AddNode("x");
  int y = db.AddNode("y");
  EXPECT_EQ(db.AddNode("x"), x);  // interning
  db.AddEdge(x, 0, y);
  EXPECT_TRUE(db.HasEdge(x, 0, y));
  EXPECT_FALSE(db.HasEdge(y, 0, x));
  EXPECT_EQ(db.NumNodes(), 2);
  EXPECT_EQ(db.NumEdges(), 1);
  EXPECT_EQ(db.OutEdges(x).size(), 1u);
  EXPECT_EQ(db.InEdges(y).size(), 1u);
  EXPECT_EQ(db.NodeName(y), "y");
  EXPECT_EQ(db.NodeId("z"), -1);
}

TEST(EvalTest, ForwardAndInverseTraversal) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  GraphDb db;
  int x = db.AddNode("x"), y = db.AddNode("y"), z = db.AddNode("z");
  db.AddEdge(x, 0, y);
  db.AddEdge(z, 0, y);

  Nfa forward = MustCompileRegex(MustParseRegex("p"), alphabet);
  EXPECT_TRUE(EvalRpqiPair(db, forward, x, y));
  EXPECT_FALSE(EvalRpqiPair(db, forward, y, x));

  // x --p--> y <--p-- z : the RPQI p p⁻ connects x to z.
  Nfa around = MustCompileRegex(MustParseRegex("p p^-"), alphabet);
  EXPECT_TRUE(EvalRpqiPair(db, around, x, z));
  EXPECT_TRUE(EvalRpqiPair(db, around, x, x));
  EXPECT_FALSE(EvalRpqiPair(db, around, x, y));
}

TEST(EvalTest, Example1VisibilitySemantics) {
  // The paper's Example 1: x is visible in m if x is reachable by
  // (hasSubmodule⁻)* (containsVar ∪ hasSubmodule).
  SignedAlphabet alphabet;
  GraphDb db;
  int root = db.AddNode("root");
  int child = db.AddNode("child");
  int grandchild = db.AddNode("grandchild");
  int v_root = db.AddNode("v_root");
  int v_child = db.AddNode("v_child");
  int has_submodule = alphabet.AddRelation("hasSubmodule");
  int contains_var = alphabet.AddRelation("containsVar");
  db.AddEdge(root, has_submodule, child);
  db.AddEdge(child, has_submodule, grandchild);
  db.AddEdge(root, contains_var, v_root);
  db.AddEdge(child, contains_var, v_child);

  Nfa query = MustCompileRegex(
      MustParseRegex("(hasSubmodule^-)* (containsVar | hasSubmodule)"),
      alphabet);
  // Visible in grandchild: everything up the chain.
  Bitset visible = EvalRpqiFrom(db, query, grandchild);
  EXPECT_TRUE(visible.Test(v_child));
  EXPECT_TRUE(visible.Test(v_root));
  EXPECT_TRUE(visible.Test(child));       // sibling-submodule visibility
  EXPECT_TRUE(visible.Test(grandchild));  // child of child
  // Visible in root: only its own variable and child module.
  Bitset visible_root = EvalRpqiFrom(db, query, root);
  EXPECT_TRUE(visible_root.Test(v_root));
  EXPECT_TRUE(visible_root.Test(child));
  EXPECT_FALSE(visible_root.Test(v_child));
}

TEST(EvalTest, AllPairsConsistentWithPerPair) {
  std::mt19937_64 rng(3);
  RandomGraphOptions options;
  options.num_nodes = 8;
  options.num_relations = 2;
  GraphDb db = RandomGraph(rng, options);
  SignedAlphabet alphabet;
  alphabet.AddRelation("r0");
  alphabet.AddRelation("r1");
  Nfa query = MustCompileRegex(MustParseRegex("r0 (r1^- | r0)*"), alphabet);
  auto pairs = EvalRpqiAllPairs(db, query);
  for (int x = 0; x < db.NumNodes(); ++x) {
    for (int y = 0; y < db.NumNodes(); ++y) {
      bool in_pairs = std::find(pairs.begin(), pairs.end(),
                                std::make_pair(x, y)) != pairs.end();
      EXPECT_EQ(in_pairs, EvalRpqiPair(db, query, x, y));
    }
  }
}

TEST(EvalTest, LineDbAgreesWithWordSatisfaction) {
  // Evaluating a query over an explicit line database must agree with the
  // two-way-automaton word-satisfaction semantics (Theorem 2 both ways).
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  alphabet.AddRelation("q");
  std::mt19937_64 rng(43);
  Nfa query = MustCompileRegex(MustParseRegex("p (q^- p)* | q"), alphabet);
  for (int len = 0; len <= 5; ++len) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<int> word = RandomWord(rng, 4, len);
      // Build the line database of the word.
      GraphDb db;
      int first = db.AddNode("n0");
      int prev = first;
      for (size_t i = 0; i < word.size(); ++i) {
        int next = db.AddNode("n" + std::to_string(i + 1));
        int relation = SignedAlphabet::RelationOfSymbol(word[i]);
        if (SignedAlphabet::IsInverseSymbol(word[i])) {
          db.AddEdge(next, relation, prev);
        } else {
          db.AddEdge(prev, relation, next);
        }
        prev = next;
      }
      EXPECT_EQ(EvalRpqiPair(db, query, first, prev),
                WordSatisfies(query, word));
    }
  }
}

TEST(IoTest, LoadSaveRoundTrip) {
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(
      "# software modules\n"
      "root hasSubmodule child\n"
      "root containsVar v1\n"
      "\n"
      "child hasSubmodule leaf\n",
      &alphabet);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumNodes(), 4);  // root, child, v1, leaf
  EXPECT_EQ(db->NumEdges(), 3);
  EXPECT_EQ(alphabet.NumRelations(), 2);

  SignedAlphabet alphabet2;
  StatusOr<GraphDb> reloaded =
      LoadGraphText(SaveGraphText(*db, alphabet), &alphabet2);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->NumEdges(), db->NumEdges());
  EXPECT_EQ(SaveGraphText(*reloaded, alphabet2), SaveGraphText(*db, alphabet));
}

TEST(IoTest, RejectsMalformedLines) {
  SignedAlphabet alphabet;
  EXPECT_FALSE(LoadGraphText("a b\n", &alphabet).ok());
  EXPECT_FALSE(LoadGraphText("a b c d\n", &alphabet).ok());
}

TEST(IoTest, ErrorsCarryLineAndByteOffsetContext) {
  // The message shape is a contract: "<source>: line N (byte B): <what>",
  // with N 1-based (counting blank/comment lines) and B the 0-based byte
  // offset of the offending line's start — what an operator pastes into
  // `tail -c +B` to see the bad spot in a multi-gigabyte graph file.
  SignedAlphabet alphabet;
  GraphTextLimits limits;
  limits.source_name = "g.txt";
  Status bad = LoadGraphText("a r b\n# ok\nbroken line here x\n", &alphabet,
                             limits)
                   .status();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.message().rfind("g.txt: line 3 (byte 11): ", 0), 0u)
      << bad.message();

  // Without a source name the prefix is dropped, not left dangling.
  SignedAlphabet alphabet2;
  Status anonymous = LoadGraphText("a r\n", &alphabet2).status();
  ASSERT_FALSE(anonymous.ok());
  EXPECT_EQ(anonymous.message().rfind("line 1 (byte 0): ", 0), 0u)
      << anonymous.message();
}

TEST(IoTest, InjectedParseIoFaultCarriesTheSameContext) {
  fault::DisarmAll();
  ASSERT_TRUE(fault::Configure("graphdb.parse_io=once:2").ok());
  SignedAlphabet alphabet;
  GraphTextLimits limits;
  limits.source_name = "g.txt";
  Status injected =
      LoadGraphText("a r b\nb r c\nc r d\n", &alphabet, limits).status();
  fault::DisarmAll();
  ASSERT_FALSE(injected.ok());
  // Fired on the second parsed line: same context shape as a real error.
  EXPECT_EQ(injected.message(),
            "g.txt: line 2 (byte 6): injected I/O error while parsing");
}

TEST(ViewsTest, MaterializedViewsAreExactByConstruction) {
  std::mt19937_64 rng(47);
  SoftwareModulesScenario scenario = MakeSoftwareModulesScenario(rng, 6, 4);
  Nfa definition =
      MustCompileRegex(scenario.view_definitions[0], scenario.alphabet);
  auto extension = MaterializeView(scenario.db, definition);
  for (const auto& [a, b] : extension) {
    EXPECT_TRUE(EvalRpqiPair(scenario.db, definition, a, b));
  }
}

TEST(ViewsTest, ViewGraphEvaluation) {
  // Two views as edges; a rewriting over them is just an RPQI over the view
  // graph.
  std::vector<std::vector<std::pair<int, int>>> extensions = {
      {{0, 1}, {1, 2}},  // view 0
      {{2, 3}},          // view 1
  };
  GraphDb graph = BuildViewGraph(4, extensions);
  EXPECT_EQ(graph.NumEdges(), 3);
  SignedAlphabet view_alphabet;
  view_alphabet.AddRelation("v0");
  view_alphabet.AddRelation("v1");
  Nfa path =
      MustCompileRegex(MustParseRegex("v0 v0 v1"), view_alphabet);
  EXPECT_TRUE(EvalRpqiPair(graph, path, 0, 3));
  Nfa back = MustCompileRegex(MustParseRegex("v1^- v0^-"), view_alphabet);
  EXPECT_TRUE(EvalRpqiPair(graph, back, 3, 1));
}

TEST(GeneratorsTest, ShapesAreAsAdvertised) {
  std::mt19937_64 rng(53);
  GraphDb chain = ChainGraph(rng, 5, 2);
  EXPECT_EQ(chain.NumNodes(), 5);
  EXPECT_EQ(chain.NumEdges(), 4);
  GraphDb tree = RandomTree(rng, 10, 1);
  EXPECT_EQ(tree.NumEdges(), 9);
  for (int node = 1; node < 10; ++node) {
    EXPECT_EQ(tree.InEdges(node).size(), 1u);  // single parent
  }
}

}  // namespace
}  // namespace rpqi
