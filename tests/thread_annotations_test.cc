// Tests for the thread-safety annotation layer (base/thread_annotations.h)
// and the annotated Mutex/MutexLock/CondVar wrappers (base/mutex.h).
//
// Two halves:
//   * compile-time: off Clang every RPQI_* macro must expand to nothing, so a
//     GCC build of annotated code is byte-identical to unannotated code. The
//     expansion proof uses the two-level stringize trick — if RPQI_GUARDED_BY
//     left any token behind, the stringized literal would be non-empty.
//   * run-time: the wrappers must behave like the std primitives they wrap on
//     every compiler (lock exclusion, TryLock contention, CondVar handoff).

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace rpqi {
namespace {

#if !defined(__clang__)

static_assert(RPQI_THREAD_SAFETY_ANALYSIS_ENABLED == 0,
              "the analysis flag must read 0 on non-Clang compilers");

// Two-level stringize so the argument is macro-expanded before '#' fires.
#define RPQI_TEST_STRINGIZE_IMPL(x) #x
#define RPQI_TEST_STRINGIZE(x) RPQI_TEST_STRINGIZE_IMPL(x)

// Each literal is "" (sizeof == 1, just the NUL) iff the macro vanished.
constexpr char kGuardedByExpansion[] =
    RPQI_TEST_STRINGIZE(RPQI_GUARDED_BY(some_mu));
constexpr char kRequiresExpansion[] =
    RPQI_TEST_STRINGIZE(RPQI_REQUIRES(some_mu));
constexpr char kExcludesExpansion[] =
    RPQI_TEST_STRINGIZE(RPQI_EXCLUDES(some_mu));
constexpr char kCapabilityExpansion[] =
    RPQI_TEST_STRINGIZE(RPQI_CAPABILITY("mutex"));
constexpr char kScopedExpansion[] =
    RPQI_TEST_STRINGIZE(RPQI_SCOPED_CAPABILITY);
constexpr char kNoTsaExpansion[] =
    RPQI_TEST_STRINGIZE(RPQI_NO_THREAD_SAFETY_ANALYSIS);

static_assert(sizeof(kGuardedByExpansion) == 1,
              "RPQI_GUARDED_BY must expand to nothing off Clang");
static_assert(sizeof(kRequiresExpansion) == 1,
              "RPQI_REQUIRES must expand to nothing off Clang");
static_assert(sizeof(kExcludesExpansion) == 1,
              "RPQI_EXCLUDES must expand to nothing off Clang");
static_assert(sizeof(kCapabilityExpansion) == 1,
              "RPQI_CAPABILITY must expand to nothing off Clang");
static_assert(sizeof(kScopedExpansion) == 1,
              "RPQI_SCOPED_CAPABILITY must expand to nothing off Clang");
static_assert(sizeof(kNoTsaExpansion) == 1,
              "RPQI_NO_THREAD_SAFETY_ANALYSIS must expand to nothing off Clang");

#undef RPQI_TEST_STRINGIZE
#undef RPQI_TEST_STRINGIZE_IMPL

TEST(ThreadAnnotationsTest, MacrosAreNoOpsOffClang) {
  // The static_asserts above are the real test; this records them in ctest.
  EXPECT_EQ(RPQI_THREAD_SAFETY_ANALYSIS_ENABLED, 0);
}

#else  // defined(__clang__)

TEST(ThreadAnnotationsTest, AnalysisEnabledUnderClang) {
  EXPECT_EQ(RPQI_THREAD_SAFETY_ANALYSIS_ENABLED, 1);
}

#endif

// The annotations must be usable in the documented idiom regardless of
// compiler: a capability member, guarded fields, EXCLUDES on the public entry
// points, REQUIRES on the locked helper.
class Accountant {
 public:
  void Add(int64_t delta) RPQI_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    AddLocked(delta);
  }
  int64_t total() const RPQI_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return total_;
  }

 private:
  void AddLocked(int64_t delta) RPQI_REQUIRES(mu_) { total_ += delta; }

  mutable Mutex mu_;
  int64_t total_ RPQI_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, MutualExclusionUnderContention) {
  Accountant acct;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acct] {
      for (int i = 0; i < kIncrementsPerThread; ++i) acct.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(acct.total(), int64_t{kThreads} * kIncrementsPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterUnlock) {
  Mutex mu;
  mu.Lock();
  // A *different* thread must observe the contention: std::mutex::try_lock
  // from the owning thread is UB.
  std::atomic<bool> contended_result{true};
  std::thread observer([&] {
    contended_result.store(mu.TryLock(), std::memory_order_relaxed);
  });
  observer.join();
  EXPECT_FALSE(contended_result.load(std::memory_order_relaxed));
  mu.Unlock();

  std::thread acquirer([&] {
    bool ok = mu.TryLock();
    contended_result.store(ok, std::memory_order_relaxed);
    if (ok) mu.Unlock();
  });
  acquirer.join();
  EXPECT_TRUE(contended_result.load(std::memory_order_relaxed));
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (runtime test; annotation-free local)
  int64_t observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // The mutex must be held again here: the producer wrote under the lock.
    observed = 42;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woke;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace rpqi
