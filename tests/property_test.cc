// Property-based sweeps over seeded random inputs: every test in this file is
// parameterized by an RNG seed (INSTANTIATE_TEST_SUITE_P below) and checks an
// algebraic invariant that must hold for all inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <random>

#include "answer/cda.h"
#include "automata/dfa.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "graphdb/eval.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "rpq/satisfaction.h"
#include "workload/graph_gen.h"
#include "workload/regex_gen.h"

namespace rpqi {
namespace {

class SeededProperty : public testing::TestWithParam<int> {
 protected:
  std::mt19937_64 rng_{static_cast<uint64_t>(GetParam())};

  SignedAlphabet MakeAlphabet() {
    SignedAlphabet alphabet;
    alphabet.AddRelation("p");
    alphabet.AddRelation("q");
    return alphabet;
  }

  RegexPtr MakeRegex(int size, double inverse_probability = 0.3) {
    RandomRegexOptions options;
    options.relation_names = {"p", "q"};
    options.target_size = size;
    options.inverse_probability = inverse_probability;
    return RandomRegex(rng_, options);
  }
};

// --- automata algebra -------------------------------------------------------

TEST_P(SeededProperty, DeMorganComplementOfUnion) {
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  Nfa a = RandomNfa(rng_, options);
  Nfa b = RandomNfa(rng_, options);
  Dfa complement_union = ComplementDfa(Determinize(UnionNfa(a, b)));
  Nfa intersection_of_complements =
      Intersect(DfaToNfa(ComplementDfa(Determinize(a))),
                DfaToNfa(ComplementDfa(Determinize(b))));
  EXPECT_TRUE(
      AreEquivalent(DfaToNfa(complement_union), intersection_of_complements));
}

TEST_P(SeededProperty, ReverseIsAnInvolution) {
  RandomAutomatonOptions options;
  options.num_states = 5;
  options.num_symbols = 2;
  Nfa a = RandomNfa(rng_, options);
  EXPECT_TRUE(AreEquivalent(a, ReverseNfa(ReverseNfa(a))));
}

TEST_P(SeededProperty, MinimizeIsIdempotentAndMinimal) {
  RandomAutomatonOptions options;
  options.num_states = 5;
  options.num_symbols = 2;
  Dfa minimal = Minimize(Determinize(RandomNfa(rng_, options)));
  Dfa again = Minimize(minimal);
  EXPECT_EQ(minimal.NumStates(), again.NumStates());
  EXPECT_TRUE(AreEquivalent(DfaToNfa(minimal), DfaToNfa(again)));
}

TEST_P(SeededProperty, StarIsIdempotent) {
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  Nfa a = RandomNfa(rng_, options);
  EXPECT_TRUE(AreEquivalent(Star(a), Star(Star(a))));
}

TEST_P(SeededProperty, ContainmentIsReflexiveAndRespectUnion) {
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  Nfa a = RandomNfa(rng_, options);
  Nfa b = RandomNfa(rng_, options);
  EXPECT_TRUE(IsContained(a, a));
  EXPECT_TRUE(IsContained(a, UnionNfa(a, b)));
  EXPECT_TRUE(IsContained(Intersect(a, b), a));
}

// --- regex layer -------------------------------------------------------------

TEST_P(SeededProperty, ParsePrintRoundTrip) {
  SignedAlphabet alphabet = MakeAlphabet();
  RegexPtr e = MakeRegex(8);
  RegexPtr reparsed = MustParseRegex(RegexToString(e));
  EXPECT_TRUE(AreEquivalent(MustCompileRegex(e, alphabet),
                            MustCompileRegex(reparsed, alphabet)));
}

TEST_P(SeededProperty, InvCommutesWithCompilation) {
  // Compiling inv(e) and inverting the automaton of e give the same language.
  SignedAlphabet alphabet = MakeAlphabet();
  RegexPtr e = MakeRegex(7);
  Nfa via_ast = MustCompileRegex(Inv(e), alphabet);
  Nfa via_automaton = InverseAutomaton(MustCompileRegex(e, alphabet));
  EXPECT_TRUE(AreEquivalent(via_ast, via_automaton)) << RegexToString(e);
}

// --- satisfaction / containment ---------------------------------------------

TEST_P(SeededProperty, LanguageMembershipImpliesSatisfaction) {
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa query = MustCompileRegex(MakeRegex(6), alphabet);
  auto word = ShortestAcceptedWord(query);
  if (word.has_value()) {
    EXPECT_TRUE(WordSatisfies(query, *word));
  }
}

TEST_P(SeededProperty, SatisfactionIsInverseSymmetric) {
  // w satisfies E ⟺ inv(w) satisfies inv(E): the line database of inv(w) is
  // the mirror image, and inv(E) navigates it mirrored.
  SignedAlphabet alphabet = MakeAlphabet();
  RegexPtr e = MakeRegex(6);
  Nfa query = MustCompileRegex(e, alphabet);
  Nfa inverse_query = MustCompileRegex(Inv(e), alphabet);
  for (int i = 0; i < 10; ++i) {
    std::vector<int> word = RandomWord(rng_, alphabet.NumSymbols(), i % 5);
    EXPECT_EQ(WordSatisfies(query, word),
              WordSatisfies(inverse_query, InverseWord(word)))
        << RegexToString(e);
  }
}

TEST_P(SeededProperty, SatisfactionIsMonotoneInContainment) {
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa small = MustCompileRegex(MakeRegex(4), alphabet);
  Nfa big = UnionNfa(small, MustCompileRegex(MakeRegex(4), alphabet));
  ASSERT_TRUE(RpqiContained(small, big));
  for (int i = 0; i < 10; ++i) {
    std::vector<int> word = RandomWord(rng_, alphabet.NumSymbols(), i % 5);
    if (WordSatisfies(small, word)) {
      EXPECT_TRUE(WordSatisfies(big, word));
    }
  }
}

// --- graph evaluation ---------------------------------------------------------

TEST_P(SeededProperty, EvaluationIsMonotoneInEdges) {
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa query = MustCompileRegex(MakeRegex(5), alphabet);
  RandomGraphOptions options;
  options.num_nodes = 6;
  options.num_relations = 2;
  GraphDb db = RandomGraph(rng_, options);
  auto before = EvalRpqiAllPairs(db, query);
  std::uniform_int_distribution<int> pick(0, db.NumNodes() - 1);
  db.AddEdge(pick(rng_), 0, pick(rng_));
  auto after = EvalRpqiAllPairs(db, query);
  for (const auto& pair : before) {
    EXPECT_TRUE(std::find(after.begin(), after.end(), pair) != after.end());
  }
}

TEST_P(SeededProperty, EvaluationDistributesOverUnion) {
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa e1 = MustCompileRegex(MakeRegex(4), alphabet);
  Nfa e2 = MustCompileRegex(MakeRegex(4), alphabet);
  RandomGraphOptions options;
  options.num_nodes = 5;
  options.num_relations = 2;
  GraphDb db = RandomGraph(rng_, options);
  auto union_answers = EvalRpqiAllPairs(db, UnionNfa(e1, e2));
  auto a1 = EvalRpqiAllPairs(db, e1);
  auto a2 = EvalRpqiAllPairs(db, e2);
  std::vector<std::pair<int, int>> merged;
  std::set_union(a1.begin(), a1.end(), a2.begin(), a2.end(),
                 std::back_inserter(merged));
  EXPECT_EQ(union_answers, merged);
}

TEST_P(SeededProperty, EvaluationComposesOverConcat) {
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa e1 = MustCompileRegex(MakeRegex(3), alphabet);
  Nfa e2 = MustCompileRegex(MakeRegex(3), alphabet);
  RandomGraphOptions options;
  options.num_nodes = 5;
  options.num_relations = 2;
  GraphDb db = RandomGraph(rng_, options);
  auto concat_answers = EvalRpqiAllPairs(db, Concat(e1, e2));
  auto a1 = EvalRpqiAllPairs(db, e1);
  auto a2 = EvalRpqiAllPairs(db, e2);
  std::vector<std::pair<int, int>> composed;
  for (const auto& [x, z1] : a1) {
    for (const auto& [z2, y] : a2) {
      if (z1 == z2) composed.push_back({x, y});
    }
  }
  std::sort(composed.begin(), composed.end());
  composed.erase(std::unique(composed.begin(), composed.end()),
                 composed.end());
  EXPECT_EQ(concat_answers, composed);
}

// --- rewriting ----------------------------------------------------------------

TEST_P(SeededProperty, RewritingWithQueryAsViewIsExact) {
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa query = MustCompileRegex(MakeRegex(4), alphabet);
  if (IsEmpty(query)) return;  // empty query: rewriting trivially exact-empty
  std::vector<Nfa> views = {query};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_FALSE(rewriting->empty);
  EXPECT_TRUE(rewriting->dfa.Accepts({0}));  // the view itself
  EXPECT_TRUE(IsExactRewriting(query, views, rewriting->dfa));
}

TEST_P(SeededProperty, RewritingShrinksWhenViewsShrink) {
  // Dropping a view can only shrink the rewriting language (restricted to
  // the remaining view symbols).
  SignedAlphabet alphabet = MakeAlphabet();
  Nfa query = MustCompileRegex(MakeRegex(4), alphabet);
  Nfa view0 = MustCompileRegex(MakeRegex(3), alphabet);
  Nfa view1 = MustCompileRegex(MakeRegex(3), alphabet);
  StatusOr<MaximalRewriting> both =
      ComputeMaximalRewriting(query, {view0, view1});
  StatusOr<MaximalRewriting> only =
      ComputeMaximalRewriting(query, {view0});
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(only.ok());
  // Words over view0's symbols accepted with one view are accepted with both.
  for (int i = 0; i < 20; ++i) {
    std::vector<int> word = RandomWord(rng_, 2, i % 4);
    if (only->dfa.Accepts(word)) {
      // Same word over the 4-symbol alphabet (ids 0,1 coincide).
      EXPECT_TRUE(both->dfa.Accepts(word));
    }
  }
}

// --- answering -----------------------------------------------------------------

TEST_P(SeededProperty, CertainImpliesPossibleUnderCda) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  RandomRegexOptions options;
  options.relation_names = {"p"};
  options.target_size = 3;
  options.inverse_probability = 0.3;
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = MustCompileRegex(RandomRegex(rng_, options), alphabet);
  View view;
  view.definition = MustCompileRegex(RandomRegex(rng_, options), alphabet);
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));

  // Consistency probe: with an ε-accepting query, (0,0) is possible iff some
  // database is consistent with the views at all.
  Nfa real_query = instance.query;
  instance.query = MustCompileRegex(MustParseRegex("%eps"), alphabet);
  StatusOr<CdaResult> consistency = PossibleAnswerCda(instance, 0, 0);
  ASSERT_TRUE(consistency.ok());
  instance.query = real_query;

  for (int c = 0; c < 2; ++c) {
    for (int d = 0; d < 2; ++d) {
      StatusOr<CdaResult> certain = CertainAnswerCda(instance, c, d);
      StatusOr<CdaResult> possible = PossibleAnswerCda(instance, c, d);
      ASSERT_TRUE(certain.ok());
      ASSERT_TRUE(possible.ok());
      // Certain ∧ consistent ⇒ possible (certainty is vacuous otherwise).
      if (certain->certain && consistency->certain) {
        EXPECT_TRUE(possible->certain);
      }
    }
  }
}

TEST_P(SeededProperty, CertainAnswersAreMonotoneInTheQuery) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  RandomRegexOptions options;
  options.relation_names = {"p"};
  options.target_size = 3;
  options.inverse_probability = 0.3;
  Nfa small = MustCompileRegex(RandomRegex(rng_, options), alphabet);
  Nfa big = UnionNfa(small, MustCompileRegex(RandomRegex(rng_, options),
                                             alphabet));
  AnsweringInstance instance;
  instance.num_objects = 2;
  View view;
  view.definition = MustCompileRegex(RandomRegex(rng_, options), alphabet);
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));

  for (int c = 0; c < 2; ++c) {
    for (int d = 0; d < 2; ++d) {
      instance.query = small;
      StatusOr<CdaResult> with_small = CertainAnswerCda(instance, c, d);
      instance.query = big;
      StatusOr<CdaResult> with_big = CertainAnswerCda(instance, c, d);
      ASSERT_TRUE(with_small.ok());
      ASSERT_TRUE(with_big.ok());
      if (with_small->certain) {
        EXPECT_TRUE(with_big->certain);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, testing::Range(1, 21));

}  // namespace
}  // namespace rpqi
