// Tests for src/service: the NDJSON protocol values (json.h), the sharded
// plan cache, the snapshot store, admission control, and the Server loop
// itself — including the concurrency stress mixing plan-cache traffic with
// snapshot hot-swaps, and exact counter accounting against the obs registry.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "automata/flat.h"
#include "automata/nfa.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/breaker.h"
#include "service/json.h"
#include "service/plan_cache.h"
#include "service/server.h"
#include "service/snapshot.h"

namespace rpqi {
namespace service {
namespace {

Json MustParse(const std::string& text) {
  StatusOr<Json> parsed = ParseJson(text);
  return std::move(parsed).value();  // aborts with the parse error if not ok
}

// ---------------------------------------------------------------------------
// json.h

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(MustParse("null").type(), Json::Type::kNull);
  EXPECT_EQ(MustParse("true").bool_value(), true);
  EXPECT_EQ(MustParse("false").bool_value(), false);
  EXPECT_EQ(MustParse("42").int_value(), 42);
  EXPECT_EQ(MustParse("-7").int_value(), -7);
  EXPECT_TRUE(MustParse("1.5").is_number());
  EXPECT_DOUBLE_EQ(MustParse("1.5").double_value(), 1.5);
  EXPECT_EQ(MustParse("\"hi\"").string_value(), "hi");
}

TEST(JsonTest, IntegersBeyondInt64BecomeDoubles) {
  Json big = MustParse("123456789012345678901234567890");
  EXPECT_EQ(big.type(), Json::Type::kDouble);
  Json exp = MustParse("1e3");
  EXPECT_EQ(exp.type(), Json::Type::kDouble);
  EXPECT_DOUBLE_EQ(exp.double_value(), 1000.0);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Json parsed = MustParse(R"("a\"b\\c\ndA")");
  EXPECT_EQ(parsed.string_value(), "a\"b\\c\ndA");
  std::string dumped = Json::Str("tab\there\"q").Dump();
  EXPECT_EQ(MustParse(dumped).string_value(), "tab\there\"q");
}

TEST(JsonTest, ObjectsPreserveOrderAndFindFirstWins) {
  Json object = MustParse(R"({"b":1,"a":2,"b":3})");
  ASSERT_TRUE(object.is_object());
  EXPECT_EQ(object.object()[0].first, "b");
  EXPECT_EQ(object.object()[1].first, "a");
  ASSERT_NE(object.Find("b"), nullptr);
  EXPECT_EQ(object.Find("b")->int_value(), 1);
  EXPECT_EQ(object.Find("missing"), nullptr);
  EXPECT_EQ(object.Dump(), R"({"b":1,"a":2,"b":3})");
}

TEST(JsonTest, NestedRoundTrip) {
  const std::string text =
      R"({"op":"eval","args":[1,2.5,"x",null,true],"sub":{"k":[]}})";
  EXPECT_EQ(MustParse(text).Dump(), text);
}

TEST(JsonTest, ErrorsNameTheByteOffset) {
  StatusOr<Json> bad = ParseJson("{\"a\":}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("byte "), std::string::npos)
      << bad.status().message();
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonTest, TrailingContentIsAnError) {
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("{} {}").ok());
  EXPECT_TRUE(ParseJson("{}  \t").ok());
}

TEST(JsonTest, DepthCapStopsAdversarialNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  StatusOr<Json> parsed = ParseJson(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("nesting"), std::string::npos)
      << parsed.status().message();
}

// ---------------------------------------------------------------------------
// plan_cache.h

std::shared_ptr<CachedPlan> PlanWithAnswers(int n) {
  auto plan = std::make_shared<CachedPlan>();
  plan->eval_answers.emplace();
  for (int i = 0; i < n; ++i) plan->eval_answers->push_back({i, i});
  return plan;
}

TEST(PlanCacheTest, HitAfterPutMissBefore) {
  PlanCache cache(int64_t{1} << 20, 4);
  EXPECT_EQ(cache.Get("k1"), nullptr);
  cache.Put("k1", PlanWithAnswers(3));
  std::shared_ptr<const CachedPlan> plan = cache.Get("k1");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->eval_answers->size(), 3u);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(PlanCacheTest, LruEvictsColdestFirst) {
  // Single shard so the LRU order is global; capacity fits ~2 small plans.
  int64_t plan_bytes = PlanWithAnswers(1)->ApproxBytes() + 2;  // + key size
  PlanCache cache(2 * plan_bytes + plan_bytes / 2, 1);
  cache.Put("k1", PlanWithAnswers(1));
  cache.Put("k2", PlanWithAnswers(1));
  ASSERT_NE(cache.Get("k1"), nullptr);  // k1 now most-recent
  cache.Put("k3", PlanWithAnswers(1));  // evicts k2, the coldest
  EXPECT_EQ(cache.Get("k2"), nullptr);
  EXPECT_NE(cache.Get("k1"), nullptr);
  EXPECT_NE(cache.Get("k3"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCacheTest, ByteAccountingMatchesEntries) {
  PlanCache cache(int64_t{1} << 20, 2);
  int64_t expected = 0;
  for (int i = 0; i < 10; ++i) {
    std::string key = "key" + std::to_string(i);
    auto plan = PlanWithAnswers(i);
    expected += plan->ApproxBytes() + static_cast<int64_t>(key.size());
    cache.Put(key, std::move(plan));
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 10);
  EXPECT_EQ(stats.bytes, expected);
  EXPECT_LE(stats.bytes, cache.capacity_bytes());
}

TEST(PlanCacheTest, ReplaceInPlaceKeepsOneEntry) {
  PlanCache cache(int64_t{1} << 20, 1);
  cache.Put("k", PlanWithAnswers(1));
  cache.Put("k", PlanWithAnswers(5));
  EXPECT_EQ(cache.stats().entries, 1);
  std::shared_ptr<const CachedPlan> plan = cache.Get("k");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->eval_answers->size(), 5u);
  // The displaced plan counts as an eviction: inserts - evictions must
  // always equal the resident entry count, even across replacements.
  EXPECT_EQ(cache.stats().inserts, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0, 4);
  cache.Put("k", PlanWithAnswers(1));
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(PlanCacheTest, EvictionNeverFreesAPinnedPlan) {
  int64_t plan_bytes = PlanWithAnswers(1)->ApproxBytes() + 2;
  PlanCache cache(plan_bytes + plan_bytes / 2, 1);
  cache.Put("k1", PlanWithAnswers(1));
  std::shared_ptr<const CachedPlan> pinned = cache.Get("k1");
  cache.Put("k2", PlanWithAnswers(1));  // evicts k1 from the cache
  EXPECT_EQ(cache.Get("k1"), nullptr);
  ASSERT_NE(pinned, nullptr);  // but the pinned reference stays valid
  EXPECT_EQ(pinned->eval_answers->size(), 1u);
}

// ---------------------------------------------------------------------------
// snapshot.h

std::string WriteTempGraph(const std::string& name, const std::string& text) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(SnapshotTest, LoadValidatesAndFingerprints) {
  std::string path = WriteTempGraph("snap_a.txt", "a r b\nb r c\n");
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::shared_ptr<const GraphSnapshot> snapshot = *loaded;
  EXPECT_EQ(snapshot->db.NumNodes(), 3);
  EXPECT_EQ(snapshot->db.NumEdges(), 2);
  EXPECT_EQ(snapshot->source_path, path);
  EXPECT_NE(snapshot->fingerprint, 0u);

  // Same content at a different path → same fingerprint (content hash).
  std::string copy = WriteTempGraph("snap_a_copy.txt", "a r b\nb r c\n");
  auto reloaded = LoadGraphSnapshot(copy);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->fingerprint, snapshot->fingerprint);

  std::string other = WriteTempGraph("snap_b.txt", "a r b\nb s c\n");
  auto different = LoadGraphSnapshot(other);
  ASSERT_TRUE(different.ok());
  EXPECT_NE((*different)->fingerprint, snapshot->fingerprint);
}

TEST(SnapshotTest, MissingFileAndBadContentAreInvalidArgument) {
  auto missing = LoadGraphSnapshot(testing::TempDir() + "no_such_graph.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kInvalidArgument);
  std::string bad = WriteTempGraph("snap_bad.txt", "a r\n");
  auto malformed = LoadGraphSnapshot(bad);
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), Status::Code::kInvalidArgument);
}

TEST(SnapshotTest, BaseAlphabetKeepsRelationIdsStable) {
  SignedAlphabet base;
  base.AddRelation("q_only");
  std::string path = WriteTempGraph("snap_base.txt", "a r b\n");
  auto loaded = LoadGraphSnapshot(path, base);
  ASSERT_TRUE(loaded.ok());
  // The base relation keeps id 0; the graph's relation appends after it.
  EXPECT_EQ((*loaded)->alphabet.NumRelations(), 2);
}

TEST(SnapshotStoreTest, ReloadSwapsAndPinsKeepOldSnapshotsAlive) {
  SnapshotStore store;
  EXPECT_EQ(store.Current(), nullptr);
  EXPECT_EQ(store.version(), 0);

  std::string path1 = WriteTempGraph("store_v1.txt", "a r b\n");
  std::string path2 = WriteTempGraph("store_v2.txt", "a r b\nb r c\nc r d\n");
  ASSERT_TRUE(store.Reload(path1).ok());
  std::shared_ptr<const GraphSnapshot> pinned = store.Current();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->version, 1);
  EXPECT_EQ(pinned->db.NumNodes(), 2);

  auto version2 = store.Reload(path2);
  ASSERT_TRUE(version2.ok());
  EXPECT_EQ(*version2, 2);
  EXPECT_EQ(store.version(), 2);
  EXPECT_EQ(store.Current()->db.NumNodes(), 4);
  // The pinned snapshot is untouched by the swap.
  EXPECT_EQ(pinned->version, 1);
  EXPECT_EQ(pinned->db.NumNodes(), 2);

  // A failed reload keeps the current snapshot and burns no version.
  ASSERT_FALSE(store.Reload(testing::TempDir() + "nope.txt").ok());
  EXPECT_EQ(store.version(), 2);
  EXPECT_EQ(store.Current()->db.NumNodes(), 4);
}

// ---------------------------------------------------------------------------
// admission.h

TEST(AdmissionTest, DefaultsFillGapsAndCapsClamp) {
  AdmissionPolicy policy;
  policy.default_timeout_ms = 100;
  policy.max_timeout_ms = 500;
  policy.default_max_states = 1000;
  policy.max_states_cap = 5000;

  Admission defaulted = AdmitRequest(policy, 0, 0);
  EXPECT_TRUE(defaulted.has_deadline);
  EXPECT_EQ(defaulted.max_states, 1000);

  Admission asked = AdmitRequest(policy, 300, 2000);
  EXPECT_TRUE(asked.has_deadline);
  EXPECT_EQ(asked.max_states, 2000);

  Admission clamped = AdmitRequest(policy, 9000, 999999);
  EXPECT_LE(clamped.deadline - clamped.admitted_at,
            std::chrono::milliseconds(500));
  EXPECT_EQ(clamped.max_states, 5000);
}

TEST(AdmissionTest, UnlimitedPolicyAndRequestMeansNoBudgetLimits) {
  Admission admission = AdmitRequest(AdmissionPolicy{}, 0, 0);
  EXPECT_FALSE(admission.has_deadline);
  EXPECT_EQ(admission.max_states, 0);
  EXPECT_FALSE(admission.ExpiredInQueue());
  Budget budget = admission.MakeBudget();
  EXPECT_TRUE(budget.Check().ok());
}

TEST(AdmissionTest, CapAppliesEvenWithoutDefaults) {
  AdmissionPolicy policy;
  policy.max_timeout_ms = 50;
  Admission admission = AdmitRequest(policy, 0, 0);
  // No request ask and no default, but the operator cap still bounds it.
  EXPECT_TRUE(admission.has_deadline);
  EXPECT_LE(admission.deadline - admission.admitted_at,
            std::chrono::milliseconds(50));
}

TEST(AdmissionTest, ExpiredInQueueAfterDeadlinePasses) {
  AdmissionPolicy policy;
  Admission admission = AdmitRequest(policy, 1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(admission.ExpiredInQueue());
  EXPECT_FALSE(admission.MakeBudget().Check().ok());
}

// ---------------------------------------------------------------------------
// Server (synchronous entry point)

const Json* FindField(const Json& response, const char* key) {
  const Json* value = response.Find(key);
  EXPECT_NE(value, nullptr) << "missing field '" << key << "' in "
                            << response.Dump();
  return value;
}

Json Handle(Server& server, const std::string& line) {
  return MustParse(server.HandleLine(line));
}

ServerOptions OptionsWithDb(const std::string& path) {
  ServerOptions options;
  options.initial_db_path = path;
  return options;
}

TEST(ServerTest, EvalHitsCacheOnSecondRequest) {
  std::string path = WriteTempGraph("srv_eval.txt", "a r b\nb r c\nc s d\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());

  Json first = Handle(server, R"({"id":1,"op":"eval","query":"r* s"})");
  EXPECT_EQ(FindField(first, "status")->string_value(), "ok");
  EXPECT_EQ(FindField(first, "cache")->string_value(), "miss");
  EXPECT_EQ(FindField(first, "snapshot_version")->int_value(), 1);
  EXPECT_EQ(FindField(first, "answers")->array().size(), 3u);

  // Textual variant of the same AST: canonicalization shares the entry.
  Json second =
      Handle(server, R"q({"id":2,"op":"eval","query":"(r)* (s)"})q");
  EXPECT_EQ(FindField(second, "status")->string_value(), "ok");
  EXPECT_EQ(FindField(second, "cache")->string_value(), "hit");
  EXPECT_EQ(FindField(second, "answers")->Dump(),
            FindField(first, "answers")->Dump());
}

TEST(ServerTest, EvalWithoutSnapshotIsUnavailable) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Init().ok());
  Json response = Handle(server, R"({"id":1,"op":"eval","query":"r"})");
  EXPECT_EQ(FindField(response, "status")->string_value(), "error");
  EXPECT_EQ(FindField(response, "code")->string_value(), "unavailable");
}

TEST(ServerTest, MalformedRequestsGetStructuredErrors) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Init().ok());
  EXPECT_EQ(FindField(Handle(server, "not json"), "code")->string_value(),
            "invalid_request");
  EXPECT_EQ(FindField(Handle(server, "[1,2]"), "code")->string_value(),
            "invalid_request");
  EXPECT_EQ(
      FindField(Handle(server, R"({"id":7,"op":"nope"})"), "code")
          ->string_value(),
      "invalid_request");
  // The id is echoed even on errors.
  EXPECT_EQ(
      FindField(Handle(server, R"({"id":7,"op":"nope"})"), "id")->int_value(),
      7);
  // A syntactically bad query expression (rewrite needs no snapshot, so the
  // parse error is what surfaces).
  EXPECT_EQ(
      FindField(
          Handle(server,
                 R"({"id":1,"op":"rewrite","query":"((","views":{"v":"r"}})"),
          "code")
          ->string_value(),
      "invalid_request");
}

TEST(ServerTest, StateQuotaMapsToResourceExhausted) {
  std::string path = WriteTempGraph("srv_quota.txt", "a r b\nb r c\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());
  Json response = Handle(
      server, R"({"id":1,"op":"eval","query":"r*","max_states":1})");
  EXPECT_EQ(FindField(response, "status")->string_value(), "error");
  EXPECT_EQ(FindField(response, "code")->string_value(), "resource_exhausted");
}

TEST(ServerTest, RewriteCachesExhaustiveResults) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Init().ok());
  const std::string request =
      R"({"id":1,"op":"rewrite","query":"r r","views":{"v1":"r"}})";
  Json first = Handle(server, request);
  EXPECT_EQ(FindField(first, "status")->string_value(), "ok");
  EXPECT_EQ(FindField(first, "cache")->string_value(), "miss");
  EXPECT_EQ(FindField(first, "rewriting")->string_value(), "v1 v1");
  EXPECT_EQ(FindField(first, "exact")->bool_value(), true);
  EXPECT_EQ(FindField(first, "exhaustive")->bool_value(), true);

  // View order in the request must not matter for the cache key.
  Json second = Handle(
      server, R"({"id":2,"op":"rewrite","query":"r r","views":[["v1","r"]]})");
  EXPECT_EQ(FindField(second, "cache")->string_value(), "hit");
  EXPECT_EQ(FindField(second, "rewriting")->string_value(), "v1 v1");
}

TEST(ServerTest, AnswerOdaAndCdaAgreeOnExactView) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Init().ok());
  for (const char* mode : {"oda", "cda"}) {
    std::string request =
        std::string(R"({"id":1,"op":"answer","mode":")") + mode +
        R"(","objects":2,"query":"r","views":[{"name":"v","expr":"r",)" +
        R"("assumption":"exact","extension":[[0,1]]}],)" +
        R"("pairs":[[0,1],[1,0]]})";
    Json response = Handle(server, request);
    ASSERT_EQ(FindField(response, "status")->string_value(), "ok") << mode;
    const JsonArray& results = FindField(response, "results")->array();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].Find("certain")->bool_value()) << mode;
    EXPECT_FALSE(results[1].Find("certain")->bool_value()) << mode;
  }
}

TEST(ServerTest, ReloadKeepsCacheWarmForIdenticalContent) {
  std::string path = WriteTempGraph("srv_warm.txt", "a r b\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());
  EXPECT_EQ(
      FindField(Handle(server, R"({"id":1,"op":"eval","query":"r"})"), "cache")
          ->string_value(),
      "miss");
  Json reload = Handle(
      server,
      R"({"id":2,"op":"admin","action":"reload","db":")" + path + R"("})");
  EXPECT_EQ(FindField(reload, "status")->string_value(), "ok");
  EXPECT_EQ(FindField(reload, "snapshot_version")->int_value(), 2);
  // Identical content → identical fingerprint → cache entry still keyed.
  Json after = Handle(server, R"({"id":3,"op":"eval","query":"r"})");
  EXPECT_EQ(FindField(after, "cache")->string_value(), "hit");
  EXPECT_EQ(FindField(after, "snapshot_version")->int_value(), 2);
}

TEST(ServerTest, AdminStatsReportsCacheAndSnapshot) {
  std::string path = WriteTempGraph("srv_stats.txt", "a r b\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());
  server.HandleLine(R"({"id":1,"op":"eval","query":"r"})");  // warm the cache
  Json stats = Handle(server, R"({"id":2,"op":"admin","action":"stats"})");
  EXPECT_EQ(FindField(stats, "status")->string_value(), "ok");
  const Json* cache = FindField(stats, "plan_cache");
  EXPECT_EQ(cache->Find("inserts")->int_value(), 1);
  EXPECT_GE(cache->Find("bytes")->int_value(), 1);
  const Json* snapshot = FindField(stats, "snapshot");
  EXPECT_EQ(snapshot->Find("version")->int_value(), 1);
  EXPECT_EQ(snapshot->Find("nodes")->int_value(), 2);
}

TEST(ServerTest, CounterDeltasAccountTheRequestExactly) {
  std::string path = WriteTempGraph("srv_counters.txt", "a r b\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());
  Json miss = Handle(server, R"({"id":1,"op":"eval","query":"r"})");
  const Json* counters = FindField(miss, "counters");
  ASSERT_NE(counters->Find("service.requests"), nullptr);
  EXPECT_EQ(counters->Find("service.requests")->int_value(), 1);
  ASSERT_NE(counters->Find("service.plan_cache.miss"), nullptr);
  EXPECT_EQ(counters->Find("service.plan_cache.miss")->int_value(), 1);
  EXPECT_EQ(counters->Find("service.plan_cache.hit"), nullptr);

  Json hit = Handle(server, R"({"id":2,"op":"eval","query":"r"})");
  const Json* hit_counters = FindField(hit, "counters");
  ASSERT_NE(hit_counters->Find("service.plan_cache.hit"), nullptr);
  EXPECT_EQ(hit_counters->Find("service.plan_cache.hit")->int_value(), 1);
  EXPECT_EQ(hit_counters->Find("service.plan_cache.miss"), nullptr);
}

// ---------------------------------------------------------------------------
// Serve() loop: drain, ordering, and the full-stack stress

TEST(ServerTest, ServeAnswersEveryLineAndDrainsOnEof) {
  std::string path = WriteTempGraph("srv_loop.txt", "a r b\nb r c\n");
  ServerOptions options = OptionsWithDb(path);
  options.threads = 2;
  Server server(options);
  ASSERT_TRUE(server.Init().ok());
  std::istringstream in(
      R"({"id":1,"op":"eval","query":"r"})" "\n"
      "\n"  // blank lines are skipped, not answered
      R"({"id":2,"op":"eval","query":"r r"})" "\n"
      "garbage\n"
      R"({"id":3,"op":"admin","action":"stats"})" "\n");
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());
  std::istringstream lines(out.str());
  std::string line;
  std::multiset<std::string> ids;
  while (std::getline(lines, line)) {
    Json response = MustParse(line);
    ids.insert(response.Find("id")->Dump());
  }
  EXPECT_EQ(ids, (std::multiset<std::string>{"1", "2", "3", "null"}));
}

TEST(ServerTest, ShutdownRequestStopsReadingFurtherInput) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Init().ok());
  std::istringstream in(
      R"({"id":1,"op":"admin","action":"shutdown"})" "\n"
      R"({"id":2,"op":"admin","action":"stats"})" "\n");
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());
  EXPECT_NE(out.str().find("\"draining\":true"), std::string::npos);
  EXPECT_EQ(out.str().find("\"id\":2"), std::string::npos);
}

TEST(ServerStressTest, MixedLoadWithReloadsLosesNoRequests) {
  std::string path1 =
      WriteTempGraph("stress_v1.txt", "a r b\nb r c\nc s d\n");
  std::string path2 =
      WriteTempGraph("stress_v2.txt", "a r b\nb r c\nc s d\nd r e\n");
  ServerOptions options = OptionsWithDb(path1);
  options.threads = 4;
  options.admission.queue_depth = 2000;  // never reject in this test
  Server server(options);
  ASSERT_TRUE(server.Init().ok());

  constexpr int kRequests = 1000;
  std::ostringstream in_text;
  for (int i = 0; i < kRequests; ++i) {
    switch (i % 5) {
      case 0:
        in_text << R"({"id":)" << i << R"(,"op":"eval","query":"r* s"})";
        break;
      case 1:
        in_text << R"({"id":)" << i << R"(,"op":"eval","query":"r r"})";
        break;
      case 2:
        in_text << R"({"id":)" << i
                << R"(,"op":"rewrite","query":"r r","views":{"v":"r"}})";
        break;
      case 3:
        in_text << R"({"id":)" << i << R"(,"op":"admin","action":"stats"})";
        break;
      case 4:
        // Periodic hot swap alternating between the two graph files.
        in_text << R"({"id":)" << i
                << R"(,"op":"admin","action":"reload","db":")"
                << (i % 10 == 4 ? path1 : path2) << R"("})";
        break;
    }
    in_text << "\n";
  }
  std::istringstream in(in_text.str());
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());

  std::istringstream lines(out.str());
  std::string line;
  std::map<int64_t, int> answered;
  int errors = 0;
  while (std::getline(lines, line)) {
    Json response = MustParse(line);
    ASSERT_TRUE(response.Find("id")->is_int()) << line;
    ++answered[response.Find("id")->int_value()];
    if (response.Find("status")->string_value() != "ok") ++errors;
  }
  // Zero requests lost across reloads: every id answered exactly once.
  ASSERT_EQ(answered.size(), static_cast<size_t>(kRequests));
  for (const auto& [id, count] : answered) {
    EXPECT_EQ(count, 1) << "id " << id;
  }
  EXPECT_EQ(errors, 0) << out.str().substr(0, 2000);
  // Eval answers must reflect *some* pinned snapshot, never a torn one: on
  // both graphs "r* s" yields exactly 3 pairs and "r r" exactly 1 (the d→e
  // edge of v2 is relation r, unreachable through s), so any other answer
  // count means a request saw a half-swapped snapshot.
  std::istringstream again(out.str());
  while (std::getline(again, line)) {
    Json response = MustParse(line);
    const Json* answers = response.Find("answers");
    if (answers == nullptr) continue;
    size_t count = answers->array().size();
    EXPECT_TRUE(count == 1 || count == 3) << line;
  }
}

TEST(ServerStressTest, PlanCacheAndSnapshotStoreUnderConcurrentTraffic) {
  // Satellite (c): N threads hammer the plan cache while a reloader hot-swaps
  // the snapshot store. Asserts no torn snapshot reads and *exact* hit/miss
  // accounting: every Get is classified as exactly one of hit or miss, both
  // in PlanCache::stats() and in the obs registry counters.
  std::string path1 = WriteTempGraph("cc_v1.txt", "a r b\n");
  std::string path2 = WriteTempGraph("cc_v2.txt", "a r b\nb r c\n");

  PlanCache cache(int64_t{1} << 16, 4);  // small: forces concurrent eviction
  SnapshotStore store;
  ASSERT_TRUE(store.Reload(path1).ok());
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  PlanCache::Stats stats_before = cache.stats();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int64_t> gets{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "key" + std::to_string((t * 7 + i) % 64);
        std::shared_ptr<const CachedPlan> plan = cache.Get(key);
        gets.fetch_add(1, std::memory_order_relaxed);
        if (plan == nullptr) {
          cache.Put(key, PlanWithAnswers(i % 8));
        } else if (!plan->eval_answers.has_value()) {
          torn.store(true);  // a cached plan must arrive fully formed
        }
        std::shared_ptr<const GraphSnapshot> snapshot = store.Current();
        // Snapshot consistency: node count must match the content the
        // fingerprint claims — a torn read would mix the two.
        int nodes = snapshot->db.NumNodes();
        if (nodes != 2 && nodes != 3) torn.store(true);
        if (snapshot->version < 1) torn.store(true);
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store.Reload(i % 2 == 0 ? path2 : path1).ok());
      std::this_thread::yield();
    }
  });
  for (std::thread& worker : workers) worker.join();

  EXPECT_FALSE(torn.load());
  EXPECT_EQ(store.version(), 51);

  PlanCache::Stats stats = cache.stats();
  int64_t hits = stats.hits - stats_before.hits;
  int64_t misses = stats.misses - stats_before.misses;
  EXPECT_EQ(hits + misses, gets.load());
  EXPECT_GT(hits, 0);
  EXPECT_GT(misses, 0);

  // The obs registry observed exactly the same classification.
  obs::MetricsSnapshot delta =
      obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.hit"), hits);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.miss"), misses);
  EXPECT_EQ(delta.CounterValue("service.snapshot.reloads"), 50);
  // Inserts and evictions balance with the cache's final entry count.
  int64_t inserts = stats.inserts - stats_before.inserts;
  int64_t evictions = stats.evictions - stats_before.evictions;
  EXPECT_EQ(delta.CounterValue("service.plan_cache.insert"), inserts);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.evict"), evictions);
  EXPECT_EQ(inserts - evictions, stats.entries - stats_before.entries);
}

// ---------------------------------------------------------------------------
// breaker.h (deterministic fake clock throughout)

TEST(CircuitBreakerTest, DisabledBreakerIsTransparent) {
  CircuitBreaker breaker(CircuitBreaker::Options{});  // threshold 0
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(breaker.ShouldReject("eval"));
    breaker.RecordInternalError("eval");
  }
  EXPECT_FALSE(breaker.ShouldReject("eval"));
  EXPECT_TRUE(breaker.Snapshot().empty());
}

CircuitBreaker::Options FakeClockOptions(int threshold, int64_t cooldown_ms,
                                         int64_t* now_ms) {
  CircuitBreaker::Options options;
  options.failure_threshold = threshold;
  options.cooldown_ms = cooldown_ms;
  options.now_ms = [now_ms] { return *now_ms; };
  return options;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndFastFails) {
  int64_t now_ms = 0;
  CircuitBreaker breaker(FakeClockOptions(3, 100, &now_ms));
  breaker.RecordInternalError("eval");
  breaker.RecordInternalError("eval");
  EXPECT_FALSE(breaker.ShouldReject("eval"));  // 2 < 3: still closed
  breaker.RecordInternalError("eval");
  EXPECT_TRUE(breaker.ShouldReject("eval"));  // tripped
  // Keys are independent: a tripped eval never blocks rewrite.
  EXPECT_FALSE(breaker.ShouldReject("rewrite"));
  now_ms += 99;
  EXPECT_TRUE(breaker.ShouldReject("eval"));  // cooldown not yet over
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  int64_t now_ms = 0;
  CircuitBreaker breaker(FakeClockOptions(2, 100, &now_ms));
  breaker.RecordInternalError("eval");
  breaker.RecordSuccess("eval");
  breaker.RecordInternalError("eval");
  EXPECT_FALSE(breaker.ShouldReject("eval"));  // never 2 in a row
}

TEST(CircuitBreakerTest, HalfOpenElectsOneProbeThenClosesOnSuccess) {
  int64_t now_ms = 0;
  CircuitBreaker breaker(FakeClockOptions(1, 100, &now_ms));
  breaker.RecordInternalError("eval");
  EXPECT_TRUE(breaker.ShouldReject("eval"));
  now_ms = 100;
  // Cooldown over: exactly one request becomes the probe, the rest still
  // fast-fail until it reports back.
  EXPECT_FALSE(breaker.ShouldReject("eval"));
  EXPECT_TRUE(breaker.ShouldReject("eval"));
  breaker.RecordSuccess("eval");
  EXPECT_FALSE(breaker.ShouldReject("eval"));  // closed again
  std::vector<CircuitBreaker::KeyState> keys = breaker.Snapshot();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].state, "closed");
  EXPECT_EQ(keys[0].trips, 1);
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  int64_t now_ms = 0;
  CircuitBreaker breaker(FakeClockOptions(1, 100, &now_ms));
  breaker.RecordInternalError("eval");
  now_ms = 100;
  EXPECT_FALSE(breaker.ShouldReject("eval"));  // probe elected
  breaker.RecordInternalError("eval");         // probe failed
  EXPECT_TRUE(breaker.ShouldReject("eval"));   // back to open
  now_ms = 150;
  EXPECT_TRUE(breaker.ShouldReject("eval"));  // new cooldown from reopen
  now_ms = 200;
  EXPECT_FALSE(breaker.ShouldReject("eval"));  // next probe
  breaker.RecordSuccess("eval");
  EXPECT_FALSE(breaker.ShouldReject("eval"));
}

// ---------------------------------------------------------------------------
// Server + breaker integration (fake clock; resource_exhausted generated by
// an injected automata fault, recovery by disarming it)

TEST(ServerTest, BreakerTripsOnInternalErrorsAndRecoversViaProbe) {
  fault::DisarmAll();
  std::string path = WriteTempGraph("breaker.txt", "a r b\n");
  int64_t now_ms = 0;
  ServerOptions options = OptionsWithDb(path);
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 100;
  options.breaker_now_ms = [&now_ms] { return now_ms; };
  Server server(options);
  ASSERT_TRUE(server.Init().ok());

  const std::string rewrite_line =
      R"({"id":1,"op":"rewrite","query":"r r","views":{"v":"r"}})";
  ASSERT_TRUE(
      fault::Configure("automata.determinize_state=every:1").ok());
  for (int i = 0; i < 2; ++i) {
    Json response = Handle(server, rewrite_line);
    EXPECT_EQ(FindField(response, "code")->string_value(),
              "resource_exhausted");
  }
  // Tripped: fast-fail without touching the engine (the armed fault tallies
  // no further hits), while other ops and admin stay reachable.
  int64_t hits_when_tripped = fault::HitCount("automata.determinize_state");
  Json rejected = Handle(server, rewrite_line);
  EXPECT_EQ(FindField(rejected, "code")->string_value(), "unavailable");
  EXPECT_NE(FindField(rejected, "message")
                ->string_value()
                .find("circuit breaker open"),
            std::string::npos);
  EXPECT_EQ(fault::HitCount("automata.determinize_state"), hits_when_tripped);
  Json eval = Handle(server, R"({"id":2,"op":"eval","query":"r"})");
  EXPECT_EQ(FindField(eval, "status")->string_value(), "ok");
  Json stats = Handle(server, R"({"id":3,"op":"admin","action":"stats"})");
  EXPECT_EQ(FindField(stats, "status")->string_value(), "ok");
  const Json* breaker = FindField(stats, "breaker");
  EXPECT_TRUE(FindField(*breaker, "enabled")->bool_value());

  // Fault repaired + cooldown over: the probe request closes the breaker.
  fault::DisarmAll();
  now_ms = 100;
  Json probe = Handle(server, rewrite_line);
  EXPECT_EQ(FindField(probe, "status")->string_value(), "ok");
  Json after = Handle(server, rewrite_line);
  EXPECT_EQ(FindField(after, "status")->string_value(), "ok");
}

// ---------------------------------------------------------------------------
// Reload retry + transient classification (snapshot fault sites)

TEST(SnapshotStoreTest, TransientOpenFaultRecoversWithRetry) {
  fault::DisarmAll();
  std::string path = WriteTempGraph("retry_ok.txt", "a r b\n");
  SnapshotStore store;
  ASSERT_TRUE(fault::Configure("snapshot.open=once").ok());
  std::vector<int64_t> sleeps;
  ReloadRetryPolicy policy;
  policy.attempts = 2;
  policy.backoff_ms = 7;
  policy.sleeper = [&sleeps](int64_t ms) { sleeps.push_back(ms); };
  bool transient = true;
  auto version = store.Reload(path, policy, &transient);
  fault::DisarmAll();
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1);  // the failed attempt burned no version number
  EXPECT_FALSE(transient);
  EXPECT_EQ(sleeps, (std::vector<int64_t>{7}));
}

TEST(SnapshotStoreTest, PersistentTransientFaultFailsWithBackoffSchedule) {
  fault::DisarmAll();
  std::string path = WriteTempGraph("retry_fail.txt", "a r b\n");
  SnapshotStore store;
  ASSERT_TRUE(fault::Configure("snapshot.read=every:1").ok());
  std::vector<int64_t> sleeps;
  ReloadRetryPolicy policy;
  policy.attempts = 4;
  policy.backoff_ms = 10;
  policy.sleeper = [&sleeps](int64_t ms) { sleeps.push_back(ms); };
  bool transient = false;
  auto version = store.Reload(path, policy, &transient);
  fault::DisarmAll();
  ASSERT_FALSE(version.ok());
  EXPECT_TRUE(transient);
  EXPECT_EQ(sleeps, (std::vector<int64_t>{10, 20, 40}));  // exponential
  EXPECT_EQ(store.version(), 0);  // still no snapshot, no version burned
  // With the fault gone the same store loads normally at version 1.
  ASSERT_TRUE(store.Reload(path).ok());
  EXPECT_EQ(store.version(), 1);
}

TEST(SnapshotStoreTest, PermanentParseFailureIsNotRetried) {
  fault::DisarmAll();
  std::string bad = WriteTempGraph("retry_bad.txt", "a r\n");
  SnapshotStore store;
  std::vector<int64_t> sleeps;
  ReloadRetryPolicy policy;
  policy.attempts = 5;
  policy.backoff_ms = 10;
  policy.sleeper = [&sleeps](int64_t ms) { sleeps.push_back(ms); };
  bool transient = true;
  auto version = store.Reload(bad, policy, &transient);
  ASSERT_FALSE(version.ok());
  EXPECT_FALSE(transient);          // content error: the file's fault
  EXPECT_TRUE(sleeps.empty());      // zero retries burned on it
  // The error carries file/line/byte context from the parser.
  EXPECT_NE(version.status().message().find("line 1 (byte 0)"),
            std::string::npos)
      << version.status().ToString();
}

TEST(SnapshotStoreTest, ReloadSwapFaultBurnsNoVersionAndRecovers) {
  fault::DisarmAll();
  std::string path = WriteTempGraph("swap_fault.txt", "a r b\n");
  SnapshotStore store;
  ASSERT_TRUE(store.Reload(path).ok());
  ASSERT_TRUE(fault::Configure("snapshot.reload_swap=once").ok());
  bool transient = false;
  auto failed = store.Reload(path, ReloadRetryPolicy{}, &transient);
  fault::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(transient);
  EXPECT_EQ(store.version(), 1);  // old snapshot still serving, no burn
  auto recovered = store.Reload(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 2);  // the failed attempt left no gap
}

TEST(ServerTest, TransientReloadFaultIsUnavailableAndCacheStaysWarm) {
  fault::DisarmAll();
  std::string path = WriteTempGraph("reload_fault.txt", "a r b\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());
  Json warm = Handle(server, R"({"id":1,"op":"eval","query":"r"})");
  EXPECT_EQ(FindField(warm, "cache")->string_value(), "miss");

  ASSERT_TRUE(fault::Configure("snapshot.open=once").ok());
  const std::string reload_line =
      R"({"id":2,"op":"admin","action":"reload","db":")" + path + R"("})";
  Json failed = Handle(server, reload_line);
  EXPECT_EQ(FindField(failed, "code")->string_value(), "unavailable");
  // Structurally invalid reload requests stay invalid_request even with
  // faults armed: the classifier must not blur client and environment.
  Json bad_request =
      Handle(server, R"({"id":3,"op":"admin","action":"reload"})");
  EXPECT_EQ(FindField(bad_request, "code")->string_value(),
            "invalid_request");

  // The one-shot fault is spent: the retried request succeeds, and the old
  // snapshot kept serving the cache in the meantime (identical content ⇒
  // same fingerprint ⇒ warm).
  Json retried = Handle(server, reload_line);
  EXPECT_EQ(FindField(retried, "status")->string_value(), "ok");
  fault::DisarmAll();
  Json hit = Handle(server, R"({"id":4,"op":"eval","query":"r"})");
  EXPECT_EQ(FindField(hit, "cache")->string_value(), "hit");
}

TEST(ServerTest, AdminStatsListsArmedFaultSites) {
  fault::DisarmAll();
  Server server{ServerOptions{}};
  Json without = Handle(server, R"({"id":1,"op":"admin","action":"stats"})");
  EXPECT_EQ(without.Find("faults"), nullptr);  // absent when disabled
  ASSERT_TRUE(fault::Configure("snapshot.open=once").ok());
  Json with = Handle(server, R"({"id":2,"op":"admin","action":"stats"})");
  const Json* faults = FindField(with, "faults");
  fault::DisarmAll();
  ASSERT_TRUE(faults->is_array());
  bool found = false;
  for (const Json& site : faults->array()) {
    if (site.Find("site")->string_value() != "snapshot.open") continue;
    found = true;
    EXPECT_TRUE(site.Find("armed")->bool_value());
    EXPECT_EQ(site.Find("policy")->string_value(), "once");
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Admission edge cases

TEST(AdmissionTest, AbsurdTimeoutIsClampedNotOverflowed) {
  // A timeout near INT64_MAX used to overflow the deadline arithmetic and
  // wrap into the past, expiring every request instantly.
  Admission admission =
      AdmitRequest(AdmissionPolicy{}, std::numeric_limits<int64_t>::max(), 0);
  EXPECT_TRUE(admission.has_deadline);
  EXPECT_GT(admission.deadline, admission.admitted_at);
  EXPECT_FALSE(admission.ExpiredInQueue());
  EXPECT_TRUE(admission.MakeBudget().Check().ok());
}

TEST(AdmissionTest, ZeroTimeoutMeansNoDeadlineNotInstantExpiry) {
  Admission admission = AdmitRequest(AdmissionPolicy{}, 0, 0);
  EXPECT_FALSE(admission.has_deadline);
  EXPECT_FALSE(admission.ExpiredInQueue());
}

TEST(ServerTest, HugeProtocolTimeoutStillExecutes) {
  std::string path = WriteTempGraph("huge_timeout.txt", "a r b\n");
  Server server(OptionsWithDb(path));
  ASSERT_TRUE(server.Init().ok());
  Json response = Handle(
      server,
      R"({"id":1,"op":"eval","query":"r","timeout_ms":9223372036854775807})");
  EXPECT_EQ(FindField(response, "status")->string_value(), "ok");
}

// ---------------------------------------------------------------------------
// Shutdown with queued work and a reload in flight

TEST(ServerTest, ShutdownDrainsQueuedRequestsAndInFlightReload) {
  std::string path1 = WriteTempGraph("drain_v1.txt", "a r b\n");
  std::string path2 = WriteTempGraph("drain_v2.txt", "a r b\nb r c\n");
  ServerOptions options = OptionsWithDb(path1);
  options.threads = 2;
  options.admission.queue_depth = 64;
  Server server(options);
  ASSERT_TRUE(server.Init().ok());
  // Sleeps occupy both workers so the reload and evals genuinely queue;
  // shutdown arrives with all of them still pending. Every accepted request
  // must still be answered, and nothing after shutdown may be read.
  std::istringstream in(
      R"({"id":1,"op":"admin","action":"sleep","ms":30})" "\n"
      R"({"id":2,"op":"admin","action":"sleep","ms":30})" "\n"
      R"({"id":3,"op":"admin","action":"reload","db":")" + path2 + "\"}\n" +
      R"({"id":4,"op":"eval","query":"r r"})" "\n"
      R"({"id":5,"op":"admin","action":"shutdown"})" "\n"
      R"({"id":6,"op":"eval","query":"r"})" "\n");
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());
  std::istringstream lines(out.str());
  std::string line;
  std::set<std::string> ids;
  while (std::getline(lines, line)) {
    Json response = MustParse(line);
    ids.insert(response.Find("id")->Dump());
    EXPECT_EQ(response.Find("status")->string_value(), "ok") << line;
  }
  EXPECT_EQ(ids, (std::set<std::string>{"1", "2", "3", "4", "5"}));
  // The drained reload really landed before Serve returned.
  EXPECT_EQ(server.snapshot_store().version(), 2);
}

// ---------------------------------------------------------------------------
// Exact plan byte accounting (CachedPlan::ApproxBytes) — what --plan-cache-mb
// actually bounds.

/// A plan shaped like what OpEval caches: compiled flat automaton + answers.
std::shared_ptr<CachedPlan> FlatEvalPlan(int num_answers) {
  Nfa nfa(2);
  int a = nfa.AddState(), b = nfa.AddState(), c = nfa.AddState();
  nfa.SetInitial(a);
  nfa.SetAccepting(c);
  nfa.AddTransition(a, 0, b);
  nfa.AddTransition(b, 1, c);
  nfa.AddTransition(c, 0, a);
  auto plan = std::make_shared<CachedPlan>();
  plan->flat_plan = CompileFlat(nfa);
  plan->eval_answers.emplace();
  for (int i = 0; i < num_answers; ++i) {
    plan->eval_answers->push_back({i, i + 1});
  }
  plan->eval_answers->shrink_to_fit();
  return plan;
}

TEST(PlanCacheTest, ApproxBytesCountsEveryHeapBlockExactly) {
  std::shared_ptr<CachedPlan> plan = FlatEvalPlan(7);
  // Recompute the footprint independently: fixed entry overhead, the flat
  // plan's exact capacity-based heap bytes, and the answer vector's header +
  // capacity. (The pre-flat estimate ignored per-state heap blocks entirely,
  // so the cache budget under-bounded resident memory.)
  int64_t expected =
      128 + plan->flat_plan->ByteSize() +
      static_cast<int64_t>(sizeof(std::vector<std::pair<int, int>>)) +
      static_cast<int64_t>(plan->eval_answers->capacity()) *
          static_cast<int64_t>(sizeof(std::pair<int, int>));
  EXPECT_EQ(plan->ApproxBytes(), expected);

  // The flat payload must dominate a plan with no answers: the accounting
  // actually sees the automaton, not just the answer list.
  std::shared_ptr<CachedPlan> answerless = FlatEvalPlan(0);
  EXPECT_GE(answerless->ApproxBytes(), answerless->flat_plan->ByteSize());

  // View names contribute per-name bytes.
  plan->view_names = {"v1", "a-rather-long-view-name"};
  expected += (32 + 2) + (32 + 23);
  EXPECT_EQ(plan->ApproxBytes(), expected);
}

TEST(PlanCacheTest, BytesGaugeTracksKnownSizePlans) {
  PlanCache cache(int64_t{1} << 20, 2);
  int64_t expected = 0;
  for (int i = 0; i < 6; ++i) {
    std::string key = "plan" + std::to_string(i);
    std::shared_ptr<CachedPlan> plan = FlatEvalPlan(i * 3);
    expected += plan->ApproxBytes() + static_cast<int64_t>(key.size());
    cache.Put(key, std::move(plan));
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 6);
  EXPECT_EQ(stats.bytes, expected);
  EXPECT_LE(stats.bytes, cache.capacity_bytes());
  // The published gauge agrees with the instance accounting (Put publishes
  // after every insert, and nothing else ran a Put since).
  EXPECT_EQ(obs::TakeMetricsSnapshot().GaugeValue("service.plan_cache.bytes"),
            stats.bytes);
}

TEST(PlanCacheTest, ByteBudgetBoundsResidentFlatPlans) {
  int64_t one_plan = FlatEvalPlan(4)->ApproxBytes() + 5;  // + key bytes
  PlanCache cache(2 * one_plan, 1);
  for (int i = 0; i < 10; ++i) {
    cache.Put("plan" + std::to_string(i), FlatEvalPlan(4));
    EXPECT_LE(cache.stats().bytes, cache.capacity_bytes());
  }
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 8);
}

// ---------------------------------------------------------------------------
// PlanDiskStore (--plan-cache-dir): persistence, rejection, fault site.

std::string FreshPlanDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(PlanDiskStoreTest, EmptyDirDisablesTheStore) {
  PlanDiskStore store("");
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(store.Load("k", 100), nullptr);
  store.Save("k", *FlatEvalPlan(2));  // must not crash or write anywhere
}

TEST(PlanDiskStoreTest, SaveThenLoadRoundTripsPlanAndAnswers) {
  PlanDiskStore store(FreshPlanDir("plan_store_rt"));
  std::shared_ptr<CachedPlan> plan = FlatEvalPlan(3);
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  store.Save("eval|fp|q", *plan);
  std::shared_ptr<const CachedPlan> loaded = store.Load("eval|fp|q", 100);
  ASSERT_NE(loaded, nullptr);
  ASSERT_TRUE(loaded->eval_answers.has_value());
  EXPECT_EQ(*loaded->eval_answers, *plan->eval_answers);
  ASSERT_TRUE(loaded->flat_plan.has_value());
  EXPECT_EQ(loaded->flat_plan->edges(), plan->flat_plan->edges());
  EXPECT_EQ(loaded->flat_plan->offsets(), plan->flat_plan->offsets());
  // A key that was never saved is a miss, not a reject.
  EXPECT_EQ(store.Load("eval|fp|other", 100), nullptr);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_write"), 1);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_hit"), 1);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_miss"), 1);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_reject"), 0);
}

TEST(PlanDiskStoreTest, FilenameAliasCannotServeAnotherKeysPlan) {
  PlanDiskStore store(FreshPlanDir("plan_store_alias"));
  store.Save("key-a", *FlatEvalPlan(2));
  // Simulate a filename-hash collision: key-b's slot holds key-a's payload.
  ASSERT_EQ(std::rename(store.PathForKey("key-a").c_str(),
                        store.PathForKey("key-b").c_str()),
            0);
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  EXPECT_EQ(store.Load("key-b", 100), nullptr);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_reject"), 1);
}

TEST(PlanDiskStoreTest, CorruptedFileIsRejectedNotServed) {
  PlanDiskStore store(FreshPlanDir("plan_store_corrupt"));
  store.Save("key", *FlatEvalPlan(2));
  std::string path = store.PathForKey("key");
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(100);
    file.put(static_cast<char>(0xff));
  }
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  EXPECT_EQ(store.Load("key", 100), nullptr);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_reject"), 1);
}

TEST(PlanDiskStoreTest, AnswerIdsBeyondSnapshotAreRejected) {
  PlanDiskStore store(FreshPlanDir("plan_store_range"));
  std::shared_ptr<CachedPlan> plan = FlatEvalPlan(5);  // answers up to (4, 5)
  store.Save("key", *plan);
  EXPECT_NE(store.Load("key", 100), nullptr);
  // The same file against a smaller snapshot names out-of-range nodes.
  EXPECT_EQ(store.Load("key", 3), nullptr);
}

TEST(PlanDiskStoreTest, DiskIoFaultFailsBothDirectionsCleanly) {
  fault::DisarmAll();
  PlanDiskStore store(FreshPlanDir("plan_store_fault"));
  ASSERT_TRUE(fault::Configure("plan_cache.disk_io=every:1").ok());
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  store.Save("key", *FlatEvalPlan(2));  // write fails, nothing persisted
  EXPECT_EQ(store.Load("key", 100), nullptr);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_write_failed"), 1);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_write"), 0);
  EXPECT_EQ(delta.CounterValue("service.plan_cache.disk_reject"), 1);
  fault::DisarmAll();
  // With the fault gone the store works again (nothing was poisoned).
  store.Save("key", *FlatEvalPlan(2));
  EXPECT_NE(store.Load("key", 100), nullptr);
}

// ---------------------------------------------------------------------------
// Server + persistent plan cache: warm restarts and corrupt-file healing.

TEST(ServerTest, RestartedServerServesRepeatedQueryFromDisk) {
  std::string graph = WriteTempGraph("srv_disk.txt", "a r b\nb r c\nc s d\n");
  ServerOptions options = OptionsWithDb(graph);
  options.plan_cache_dir = FreshPlanDir("srv_disk_plans");
  const std::string line = R"({"id":1,"op":"eval","query":"r* s"})";
  std::string cold_answers;
  {
    Server server(options);
    ASSERT_TRUE(server.Init().ok());
    Json cold = Handle(server, line);
    EXPECT_EQ(FindField(cold, "status")->string_value(), "ok");
    EXPECT_EQ(FindField(cold, "cache")->string_value(), "miss");
    cold_answers = FindField(cold, "answers")->Dump();
  }  // server gone; only the persisted plan survives
  Server restarted(options);
  ASSERT_TRUE(restarted.Init().ok());
  Json warm = Handle(restarted, line);
  EXPECT_EQ(FindField(warm, "status")->string_value(), "ok");
  EXPECT_EQ(FindField(warm, "cache")->string_value(), "disk");
  EXPECT_EQ(FindField(warm, "answers")->Dump(), cold_answers);
  // The disk hit was promoted into the in-memory cache.
  Json hot = Handle(restarted, line);
  EXPECT_EQ(FindField(hot, "cache")->string_value(), "hit");
  // No recompile on the warm path: the per-request counter deltas carry no
  // eval.plan_compiles for the disk-served request.
  EXPECT_EQ(FindField(warm, "counters")->Find("eval.plan_compiles"), nullptr);
}

TEST(ServerTest, CorruptPersistedPlanRecompilesAndServerStaysUp) {
  std::string graph = WriteTempGraph("srv_heal.txt", "a r b\nb r c\n");
  ServerOptions options = OptionsWithDb(graph);
  options.plan_cache_dir = FreshPlanDir("srv_heal_plans");
  const std::string line = R"({"id":1,"op":"eval","query":"r*"})";
  std::string good_answers;
  {
    Server server(options);
    ASSERT_TRUE(server.Init().ok());
    good_answers =
        FindField(Handle(server, line), "answers")->Dump();
  }
  // Corrupt every persisted plan in place (a torn write / bad sector).
  int corrupted = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.plan_cache_dir)) {
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(90);
    file.put('\x5a');
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);

  Server restarted(options);
  ASSERT_TRUE(restarted.Init().ok());
  Json healed = Handle(restarted, line);
  // The corrupt plan is rejected by checksum, the query recompiles, the
  // response is correct, and the serve path never errors.
  EXPECT_EQ(FindField(healed, "status")->string_value(), "ok");
  EXPECT_EQ(FindField(healed, "cache")->string_value(), "miss");
  EXPECT_EQ(FindField(healed, "answers")->Dump(), good_answers);
  EXPECT_EQ(
      FindField(healed, "counters")->Find("service.plan_cache.disk_reject")
          ->int_value(),
      1);

  // The recompile re-persisted a good plan: one more restart serves "disk".
  Server again(options);
  ASSERT_TRUE(again.Init().ok());
  EXPECT_EQ(FindField(Handle(again, line), "cache")->string_value(), "disk");
}

}  // namespace
}  // namespace service
}  // namespace rpqi
