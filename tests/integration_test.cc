// End-to-end integration across modules: text database → evaluation → view
// materialization → rewriting → view-based answering → certain answers, with
// the semantic relationships between the pipelines checked on each instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "answer/cda.h"
#include "answer/oda.h"
#include "graphdb/eval.h"
#include "graphdb/io.h"
#include "graphdb/views.h"
#include "regex/parser.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "workload/scenario.h"

namespace rpqi {
namespace {

TEST(IntegrationTest, TextToRewritingRoundTrip) {
  // Load a database from text, define query and views, rewrite, evaluate the
  // rewriting over materialized views, and compare with direct evaluation.
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(
      "a manages b\n"
      "a manages c\n"
      "b manages d\n"
      "b mentors e\n"
      "c mentors e\n"
      "d mentors a\n",
      &alphabet);
  ASSERT_TRUE(db.ok());

  // "Colleagues under a common manager, transitively mentored":
  Nfa query = MustCompileRegex(
      MustParseRegex("manages^-* manages mentors"), alphabet);
  std::vector<Nfa> views = {
      MustCompileRegex(MustParseRegex("manages"), alphabet),
      MustCompileRegex(MustParseRegex("mentors"), alphabet),
  };
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  ASSERT_FALSE(rewriting->empty);
  ASSERT_TRUE(IsExactRewriting(query, views, rewriting->dfa));

  std::vector<std::vector<std::pair<int, int>>> extensions;
  for (const Nfa& view : views) {
    extensions.push_back(MaterializeView(*db, view));
  }
  EXPECT_EQ(EvaluateRewriting(rewriting->dfa, db->NumNodes(), extensions),
            EvalRpqiAllPairs(*db, query));
}

TEST(IntegrationTest, RealDatabaseIsNeverAcounterexampleToCertainAnswers) {
  // Materialize exact extensions from a real database; every certain answer
  // (CDA) must hold in that database, because the database itself is
  // consistent with the views.
  std::mt19937_64 rng(211);
  SoftwareModulesScenario scenario = MakeSoftwareModulesScenario(rng, 4, 1);
  Nfa query = MustCompileRegex(scenario.visibility_query, scenario.alphabet);

  AnsweringInstance instance;
  instance.num_objects = scenario.db.NumNodes();
  instance.query = query;
  for (const RegexPtr& def : scenario.view_definitions) {
    View view;
    view.definition = MustCompileRegex(def, scenario.alphabet);
    view.extension = MaterializeView(scenario.db, view.definition);
    view.assumption = ViewAssumption::kExact;
    instance.views.push_back(std::move(view));
  }

  auto direct = EvalRpqiAllPairs(scenario.db, query);
  int certain_count = 0;
  for (int c = 0; c < instance.num_objects; ++c) {
    for (int d = 0; d < instance.num_objects; ++d) {
      StatusOr<CdaResult> result = CertainAnswerCda(instance, c, d);
      ASSERT_TRUE(result.ok());
      if (result->certain) {
        ++certain_count;
        EXPECT_TRUE(std::find(direct.begin(), direct.end(),
                              std::make_pair(c, d)) != direct.end())
            << "(" << c << "," << d << ") certain but false in the real DB";
      }
    }
  }
  EXPECT_GT(certain_count, 0);
}

TEST(IntegrationTest, RewritingAnswersAreCertainUnderSoundViews) {
  // The classic connection between the two halves of the paper: evaluating
  // the maximal rewriting over sound view extensions yields only certain
  // answers (each rewriting path witnesses the query in every consistent DB).
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  Nfa query = MustCompileRegex(MustParseRegex("p p"), alphabet);
  std::vector<Nfa> views = {MustCompileRegex(MustParseRegex("p"), alphabet)};

  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());

  AnsweringInstance instance;
  instance.num_objects = 3;
  instance.query = query;
  View view;
  view.definition = views[0];
  view.extension = {{0, 1}, {1, 2}, {2, 2}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(view);

  auto from_rewriting = EvaluateRewriting(rewriting->dfa, instance.num_objects,
                                          {view.extension});
  EXPECT_FALSE(from_rewriting.empty());
  for (const auto& [c, d] : from_rewriting) {
    StatusOr<CdaResult> cda = CertainAnswerCda(instance, c, d);
    ASSERT_TRUE(cda.ok());
    EXPECT_TRUE(cda->certain) << "(" << c << "," << d << ")";
    StatusOr<OdaResult> oda = CertainAnswerOda(instance, c, d);
    ASSERT_TRUE(oda.ok());
    EXPECT_TRUE(oda->certain) << "(" << c << "," << d << ")";
  }
}

TEST(IntegrationTest, ExactViewsRecoverDatabaseUpToQueryEquivalence) {
  // With exact single-relation views covering every relation, the certain
  // answers of any query coincide with its evaluation on the database the
  // extensions came from (the extensions pin the database exactly, under
  // both domain assumptions for CDA; ODA may add anonymous nodes but exact
  // single-relation views forbid extra edges entirely).
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(
      "x r y\n"
      "y r z\n"
      "z s x\n",
      &alphabet);
  ASSERT_TRUE(db.ok());
  Nfa query = MustCompileRegex(MustParseRegex("r r s"), alphabet);

  AnsweringInstance instance;
  instance.num_objects = db->NumNodes();
  instance.query = query;
  for (int relation = 0; relation < alphabet.NumRelations(); ++relation) {
    View view;
    Nfa single(alphabet.NumSymbols());
    int s0 = single.AddState();
    int s1 = single.AddState();
    single.SetInitial(s0);
    single.SetAccepting(s1);
    single.AddTransition(s0, 2 * relation, s1);
    view.definition = single;
    view.extension = MaterializeView(*db, single);
    view.assumption = ViewAssumption::kExact;
    instance.views.push_back(std::move(view));
  }

  auto direct = EvalRpqiAllPairs(*db, query);
  for (int c = 0; c < instance.num_objects; ++c) {
    for (int d = 0; d < instance.num_objects; ++d) {
      bool in_direct = std::find(direct.begin(), direct.end(),
                                 std::make_pair(c, d)) != direct.end();
      StatusOr<CdaResult> cda = CertainAnswerCda(instance, c, d);
      ASSERT_TRUE(cda.ok());
      EXPECT_EQ(cda->certain, in_direct) << "(" << c << "," << d << ")";
    }
  }
}

TEST(IntegrationTest, EmptyRewritingStillLeavesAnsweringAvailable) {
  // Views that cannot express the query give an empty rewriting, yet
  // view-based *answering* may still derive certain answers — the two
  // mechanisms are genuinely different (rewriting evaluates over Σ_E words;
  // answering reasons about all consistent databases).
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  // Query p; only view is p p (cannot be composed into exactly p).
  Nfa query = MustCompileRegex(MustParseRegex("p"), alphabet);
  std::vector<Nfa> views = {MustCompileRegex(MustParseRegex("p p"), alphabet)};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_TRUE(rewriting->empty);

  // Under CDA with two objects, the p p promise forces the edge 0→1 (the
  // midpoint is 0 or 1, and both cases contain 0→1): answering wins.
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = query;
  View view;
  view.definition = views[0];
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(view);
  StatusOr<CdaResult> cda = CertainAnswerCda(instance, 0, 1);
  ASSERT_TRUE(cda.ok());
  EXPECT_TRUE(cda->certain);
}

}  // namespace
}  // namespace rpqi
