#include <gtest/gtest.h>

#include <random>

#include "answer/certificates.h"
#include "answer/linearize.h"
#include "answer/oda.h"
#include "answer/views.h"
#include "graphdb/eval.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/regex_gen.h"

namespace rpqi {
namespace {

/// Random canonical word over the given alphabet, with all objects mentioned.
std::vector<int> RandomCanonicalWord(std::mt19937_64& rng,
                                     const LinearAlphabet& alphabet) {
  std::vector<CanonicalBlock> blocks;
  for (int object = 0; object < alphabet.num_objects; ++object) {
    blocks.push_back({object, {}, object});
  }
  int extra = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < extra; ++i) {
    CanonicalBlock block;
    block.from = static_cast<int>(rng() % alphabet.num_objects);
    block.to = static_cast<int>(rng() % alphabet.num_objects);
    int len = 1 + static_cast<int>(rng() % 3);
    for (int j = 0; j < len; ++j) {
      block.labels.push_back(static_cast<int>(rng() % alphabet.sigma_symbols));
    }
    blocks.push_back(block);
  }
  return CanonicalDbToWord(blocks, alphabet);
}

// The heart of Theorem 17: on canonical words, the minimal uniform
// certificate of the search-FREE automaton proves rejection exactly when the
// search-FULL automaton rejects — i.e., exactly when (c,d) ∉ ans(Q, B).
TEST(CertificatesTest, UniformCertificateMatchesSearchModeAutomaton) {
  std::mt19937_64 rng(107);
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  sigma.AddRelation("q");
  LinearAlphabet alphabet{sigma.NumSymbols(), 3};

  RandomRegexOptions regex_options;
  regex_options.relation_names = {"p", "q"};
  regex_options.target_size = 3;
  regex_options.inverse_probability = 0.3;

  int rejected_seen = 0, accepted_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Nfa query = MustCompileRegex(RandomRegex(rng, regex_options), sigma);
    std::vector<int> word = RandomCanonicalWord(rng, alphabet);
    for (int c = 0; c < alphabet.num_objects; ++c) {
      for (int d = 0; d < alphabet.num_objects; ++d) {
        LinearEvalSpec full_spec;
        full_spec.start = LinearEvalSpec::Start::kAtConstant;
        full_spec.start_constant = c;
        full_spec.end = LinearEvalSpec::End::kAtConstant;
        full_spec.end_constant = d;
        TwoWayNfa full = BuildLinearizedEvalAutomaton(query, alphabet, full_spec);
        bool accepted = SimulateTwoWay(full, word);

        TwoWayNfa search_free =
            BuildSearchFreeQueryAutomaton(query, alphabet, c, d);
        std::optional<UniformCertificate> certificate =
            ComputeMinimalUniformCertificate(search_free, alphabet, word);
        EXPECT_EQ(certificate.has_value(), !accepted)
            << "trial " << trial << " pair (" << c << "," << d << ")";
        (accepted ? accepted_seen : rejected_seen)++;
      }
    }
  }
  EXPECT_GT(rejected_seen, 0);
  EXPECT_GT(accepted_seen, 0);
}

TEST(CertificatesTest, CertificateAgreesWithGraphEvaluation) {
  // Same as above but validated against the independent graphdb evaluator
  // (Theorem 14 + Theorem 17 composed).
  std::mt19937_64 rng(109);
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  LinearAlphabet alphabet{sigma.NumSymbols(), 2};
  Nfa query = MustCompileRegex(MustParseRegex("p p"), sigma);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> word = RandomCanonicalWord(rng, alphabet);
    StatusOr<GraphDb> db = WordToCanonicalDb(word, alphabet);
    ASSERT_TRUE(db.ok());
    for (int c = 0; c < 2; ++c) {
      for (int d = 0; d < 2; ++d) {
        TwoWayNfa search_free =
            BuildSearchFreeQueryAutomaton(query, alphabet, c, d);
        std::optional<UniformCertificate> certificate =
            ComputeMinimalUniformCertificate(search_free, alphabet, word);
        EXPECT_EQ(certificate.has_value(), !EvalRpqiPair(*db, query, c, d))
            << "trial " << trial;
      }
    }
  }
}

TEST(CertificatesTest, LabelingFromWitnessYieldsWord) {
  // NP-witness round trip: take the counterexample from the main ODA
  // pipeline, extract its uniform labeling, and ask the certificate engine
  // for a word realizing that labeling under the same sound views. The word
  // it finds must itself be a valid counterexample.
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = MustCompileRegex(MustParseRegex("p"), sigma);
  View view;
  view.definition = MustCompileRegex(MustParseRegex("p p"), sigma);
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(view);

  StatusOr<OdaResult> oda = CertainAnswerOda(instance, 0, 1);
  ASSERT_TRUE(oda.ok());
  ASSERT_FALSE(oda->certain);
  ASSERT_TRUE(oda->counterexample_word.has_value());

  LinearAlphabet alphabet{sigma.NumSymbols(), 2};
  TwoWayNfa search_free =
      BuildSearchFreeQueryAutomaton(instance.query, alphabet, 0, 1);
  std::optional<UniformCertificate> labeling = ComputeMinimalUniformCertificate(
      search_free, alphabet, *oda->counterexample_word);
  ASSERT_TRUE(labeling.has_value());

  LinearEvalSpec view_spec;
  view_spec.start = LinearEvalSpec::Start::kAtConstant;
  view_spec.start_constant = 0;
  view_spec.end = LinearEvalSpec::End::kAtConstant;
  view_spec.end_constant = 1;
  TwoWayNfa view_automaton =
      BuildLinearizedEvalAutomaton(view.definition, alphabet, view_spec);

  StatusOr<std::optional<std::vector<int>>> word = FindWordForLabeling(
      search_free, alphabet, *labeling, {}, {&view_automaton},
      /*max_states=*/int64_t{1} << 22);
  ASSERT_TRUE(word.ok()) << word.status().ToString();
  ASSERT_TRUE(word->has_value());

  // Soundness of anything found: it decodes to a DB consistent with the view
  // that excludes (0,1) from the query answer.
  StatusOr<GraphDb> db = WordToCanonicalDb(**word, alphabet);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(VerifyOdaCounterexample(instance, 0, 1, *db));
}

TEST(CertificatesTest, EmptyLabelingFindsNoWordWhenPairIsCertain) {
  // (0,1) is certain here (the view def is the query itself); in particular
  // the all-empty labeling must not produce any counterexample word.
  SignedAlphabet sigma;
  sigma.AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = MustCompileRegex(MustParseRegex("p"), sigma);
  View view;
  view.definition = MustCompileRegex(MustParseRegex("p"), sigma);
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(view);

  LinearAlphabet alphabet{sigma.NumSymbols(), 2};
  TwoWayNfa search_free =
      BuildSearchFreeQueryAutomaton(instance.query, alphabet, 0, 1);
  UniformCertificate empty_labeling;
  empty_labeling.object_labels.assign(2, Bitset(search_free.NumStates()));

  LinearEvalSpec view_spec;
  view_spec.start = LinearEvalSpec::Start::kAtConstant;
  view_spec.start_constant = 0;
  view_spec.end = LinearEvalSpec::End::kAtConstant;
  view_spec.end_constant = 1;
  TwoWayNfa view_automaton =
      BuildLinearizedEvalAutomaton(view.definition, alphabet, view_spec);

  StatusOr<std::optional<std::vector<int>>> word = FindWordForLabeling(
      search_free, alphabet, empty_labeling, {}, {&view_automaton},
      /*max_states=*/int64_t{1} << 22);
  ASSERT_TRUE(word.ok()) << word.status().ToString();
  EXPECT_FALSE(word->has_value());
}

}  // namespace
}  // namespace rpqi
