#include <gtest/gtest.h>

#include <random>

#include "automata/dfa.h"
#include "automata/lazy.h"
#include "automata/nfa.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "automata/state_elim.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

namespace rpqi {
namespace {

/// Compiles an inverse-free regex over relations {a, b} into an NFA whose
/// symbols are the *forward* Σ± ids — convenient for generic automata tests.
Nfa FromRegex(const std::string& text) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("a");
  alphabet.AddRelation("b");
  return MustCompileRegex(MustParseRegex(text), alphabet);
}

const int kA = 0;  // symbol id of atom a
const int kB = 2;  // symbol id of atom b

std::vector<std::vector<int>> AllWords(int num_symbols, int max_length,
                                       const std::vector<int>& symbols) {
  std::vector<std::vector<int>> words = {{}};
  std::vector<std::vector<int>> frontier = {{}};
  for (int len = 1; len <= max_length; ++len) {
    std::vector<std::vector<int>> next;
    for (const auto& word : frontier) {
      for (int s : symbols) {
        std::vector<int> extended = word;
        extended.push_back(s);
        next.push_back(extended);
        words.push_back(extended);
      }
    }
    frontier = std::move(next);
  }
  (void)num_symbols;
  return words;
}

TEST(NfaTest, AcceptsMatchesRegexSemantics) {
  Nfa nfa = FromRegex("a (b a)* ");
  EXPECT_TRUE(Accepts(nfa, {kA}));
  EXPECT_TRUE(Accepts(nfa, {kA, kB, kA}));
  EXPECT_TRUE(Accepts(nfa, {kA, kB, kA, kB, kA}));
  EXPECT_FALSE(Accepts(nfa, {}));
  EXPECT_FALSE(Accepts(nfa, {kB}));
  EXPECT_FALSE(Accepts(nfa, {kA, kB}));
}

TEST(OpsTest, DeterminizeAgreesWithNfaOnAllShortWords) {
  Nfa nfa = FromRegex("(a | a b)* b");
  Dfa dfa = Determinize(nfa);
  for (const auto& word : AllWords(4, 6, {kA, kB})) {
    EXPECT_EQ(Accepts(nfa, word), dfa.Accepts(word));
  }
}

TEST(OpsTest, ComplementFlipsMembership) {
  Nfa nfa = FromRegex("a* b");
  Dfa complement = ComplementDfa(Determinize(nfa));
  for (const auto& word : AllWords(4, 5, {kA, kB})) {
    EXPECT_NE(Accepts(nfa, word), complement.Accepts(word));
  }
}

TEST(OpsTest, IntersectIsConjunction) {
  Nfa lhs = FromRegex("a (a | b)*");   // starts with a
  Nfa rhs = FromRegex("(a | b)* b");   // ends with b
  Nfa both = Intersect(lhs, rhs);
  for (const auto& word : AllWords(4, 5, {kA, kB})) {
    EXPECT_EQ(Accepts(both, word), Accepts(lhs, word) && Accepts(rhs, word));
  }
}

TEST(OpsTest, UnionConcatStarSemantics) {
  Nfa a = FromRegex("a");
  Nfa b = FromRegex("b");
  Nfa u = UnionNfa(a, b);
  EXPECT_TRUE(Accepts(u, {kA}));
  EXPECT_TRUE(Accepts(u, {kB}));
  EXPECT_FALSE(Accepts(u, {kA, kB}));

  Nfa ab = Concat(a, b);
  EXPECT_TRUE(Accepts(ab, {kA, kB}));
  EXPECT_FALSE(Accepts(ab, {kA}));

  Nfa star = Star(ab);
  EXPECT_TRUE(Accepts(star, {}));
  EXPECT_TRUE(Accepts(star, {kA, kB, kA, kB}));
  EXPECT_FALSE(Accepts(star, {kA, kB, kA}));
}

TEST(OpsTest, ReverseReversesWords) {
  Nfa nfa = FromRegex("a a b");
  Nfa reversed = ReverseNfa(nfa);
  EXPECT_TRUE(Accepts(reversed, {kB, kA, kA}));
  EXPECT_FALSE(Accepts(reversed, {kA, kA, kB}));
}

TEST(OpsTest, ProjectErasesAndRenames) {
  Nfa nfa = FromRegex("a b a");
  // Erase b, rename a -> 0 over a 1-symbol alphabet.
  std::vector<int> mapping(nfa.num_symbols(), kEpsilon);
  mapping[kA] = 0;
  Nfa image = Project(nfa, mapping, 1);
  EXPECT_TRUE(Accepts(image, {0, 0}));
  EXPECT_FALSE(Accepts(image, {0}));
}

TEST(OpsTest, EmptinessAndShortestWord) {
  EXPECT_TRUE(IsEmpty(FromRegex("%empty")));
  EXPECT_TRUE(IsEmpty(FromRegex("%empty a")));
  Nfa nfa = FromRegex("a a (b | a)");
  auto word = ShortestAcceptedWord(nfa);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->size(), 3u);
  EXPECT_TRUE(Accepts(nfa, *word));
}

TEST(OpsTest, ContainmentAndEquivalence) {
  EXPECT_TRUE(IsContained(FromRegex("a a"), FromRegex("a*")));
  EXPECT_FALSE(IsContained(FromRegex("a*"), FromRegex("a a")));
  EXPECT_TRUE(AreEquivalent(FromRegex("(a b)* a | %eps a"),
                            FromRegex("a (b a)*")));
  EXPECT_FALSE(AreEquivalent(FromRegex("a* b*"), FromRegex("(a | b)*")));
}

TEST(OpsTest, TrimPreservesLanguage) {
  Nfa nfa = FromRegex("a | %empty b");
  Nfa trimmed = Trim(nfa);
  EXPECT_LE(trimmed.NumStates(), nfa.NumStates());
  for (const auto& word : AllWords(4, 4, {kA, kB})) {
    EXPECT_EQ(Accepts(nfa, word), Accepts(trimmed, word));
  }
}

TEST(MinimizeTest, ProducesCanonicalSizes) {
  // (a|b)* a (a|b)^k needs exactly 2^(k+1) live states in the minimal
  // complete DFA: every subset of the last k+1 positions is distinguishable.
  // Our Σ± alphabet also carries the (unused) inverse symbols a⁻/b⁻, which
  // force one extra rejecting sink.
  for (int k = 0; k <= 3; ++k) {
    std::string text = "(a | b)* a";
    for (int i = 0; i < k; ++i) text += " (a | b)";
    Dfa minimal = Minimize(Determinize(FromRegex(text)));
    EXPECT_EQ(minimal.NumStates(), (1 << (k + 1)) + 1) << "k=" << k;
  }
}

TEST(MinimizeTest, PreservesLanguage) {
  std::mt19937_64 rng(7);
  RandomAutomatonOptions options;
  options.num_states = 6;
  options.num_symbols = 2;
  for (int trial = 0; trial < 50; ++trial) {
    Nfa nfa = RandomNfa(rng, options);
    Dfa dfa = Determinize(nfa);
    Dfa minimal = Minimize(dfa);
    EXPECT_LE(minimal.NumStates(), dfa.NumStates() + 1);
    for (int i = 0; i < 40; ++i) {
      std::vector<int> word = RandomWord(rng, 2, i % 8);
      EXPECT_EQ(dfa.Accepts(word), minimal.Accepts(word));
    }
  }
}

TEST(LazySubsetDfaTest, MatchesEagerDeterminization) {
  std::mt19937_64 rng(21);
  RandomAutomatonOptions options;
  options.num_states = 5;
  options.num_symbols = 3;
  for (int trial = 0; trial < 30; ++trial) {
    Nfa nfa = RandomNfa(rng, options);
    Dfa dfa = Determinize(nfa);
    LazySubsetDfa lazy(nfa);
    for (int i = 0; i < 30; ++i) {
      std::vector<int> word = RandomWord(rng, 3, i % 7);
      int state = lazy.StartState();
      for (int symbol : word) state = lazy.Step(state, symbol);
      EXPECT_EQ(lazy.IsAccepting(state), dfa.Accepts(word));
    }
  }
}

TEST(LazyProductDfaTest, ConjunctionOfParts) {
  Nfa lhs = FromRegex("a (a | b)*");
  Nfa rhs = FromRegex("(a | b)* b");
  LazySubsetDfa lazy_lhs(lhs), lazy_rhs(rhs);
  LazyProductDfa product({&lazy_lhs, &lazy_rhs});
  for (const auto& word : AllWords(4, 5, {kA, kB})) {
    int state = product.StartState();
    for (int symbol : word) state = product.Step(state, symbol);
    EXPECT_EQ(product.IsAccepting(state),
              Accepts(lhs, word) && Accepts(rhs, word));
  }
}

TEST(FindAcceptedWordTest, FindsShortestWitness) {
  Nfa nfa = FromRegex("a a a | a b");
  LazySubsetDfa lazy(nfa);
  EmptinessResult result = FindAcceptedWord(&lazy, 1000);
  ASSERT_EQ(result.outcome, EmptinessResult::Outcome::kFoundWord);
  EXPECT_EQ(result.witness.size(), 2u);
  EXPECT_TRUE(Accepts(nfa, result.witness));
}

TEST(FindAcceptedWordTest, ReportsEmpty) {
  Nfa nfa = FromRegex("%empty");
  LazySubsetDfa lazy(nfa);
  EXPECT_EQ(FindAcceptedWord(&lazy, 1000).outcome,
            EmptinessResult::Outcome::kEmpty);
}

TEST(MaterializeLazyDfaTest, RoundTripsLanguage) {
  Nfa nfa = FromRegex("(a b | b)* a");
  LazySubsetDfa lazy(nfa);
  StatusOr<Dfa> dfa = MaterializeLazyDfa(&lazy, 1 << 12);
  ASSERT_TRUE(dfa.ok());
  for (const auto& word : AllWords(4, 6, {kA, kB})) {
    EXPECT_EQ(dfa->Accepts(word), Accepts(nfa, word));
  }
}

TEST(MaterializeLazyDfaTest, HonorsLimit) {
  Nfa nfa = FromRegex("(a | b)* a (a | b) (a | b) (a | b) (a | b)");
  LazySubsetDfa lazy(nfa);
  StatusOr<Dfa> dfa = MaterializeLazyDfa(&lazy, 4);
  EXPECT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), Status::Code::kResourceExhausted);
}

TEST(StateElimTest, ReproducesLanguage) {
  std::mt19937_64 rng(99);
  RandomAutomatonOptions options;
  options.num_states = 4;
  options.num_symbols = 2;
  SignedAlphabet alphabet;
  alphabet.AddRelation("a");
  for (int trial = 0; trial < 20; ++trial) {
    Nfa nfa = RandomNfa(rng, options);
    std::vector<RegexPtr> atoms = {RAtom("a"), RAtom("a", true)};
    RegexPtr regex = NfaToRegex(nfa, atoms);
    Nfa back = MustCompileRegex(regex, alphabet);
    EXPECT_TRUE(AreEquivalent(nfa, back)) << "trial " << trial;
  }
}

TEST(DeterminizeWithLimitTest, FailsGracefully) {
  Nfa nfa = FromRegex("(a | b)* a (a | b) (a | b) (a | b) (a | b) (a | b)");
  StatusOr<Dfa> dfa = DeterminizeWithLimit(nfa, 8);
  EXPECT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), Status::Code::kResourceExhausted);
}

TEST(WidenAlphabetTest, PreservesWordsAndShiftsSymbols) {
  Nfa nfa = FromRegex("a b");
  Nfa widened = WidenAlphabet(nfa, 10, 3);
  EXPECT_EQ(widened.num_symbols(), 10);
  EXPECT_TRUE(Accepts(widened, {kA + 3, kB + 3}));
  EXPECT_FALSE(Accepts(widened, {kA, kB}));
}

TEST(UniversalAndSingleWordTest, Basics) {
  Nfa universal = UniversalNfa(2);
  EXPECT_TRUE(Accepts(universal, {}));
  EXPECT_TRUE(Accepts(universal, {0, 1, 1, 0}));
  Nfa single = SingleWordNfa(3, {2, 0, 1});
  EXPECT_TRUE(Accepts(single, {2, 0, 1}));
  EXPECT_FALSE(Accepts(single, {2, 0}));
  EXPECT_FALSE(Accepts(single, {}));
}

}  // namespace
}  // namespace rpqi
