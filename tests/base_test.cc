#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/bitset.h"
#include "base/flags.h"
#include "base/interner.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rpqi {
namespace {

TEST(BitsetTest, SetTestReset) {
  Bitset bits(130);
  EXPECT_EQ(bits.size(), 130);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3);
  bits.Reset(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2);
}

TEST(BitsetTest, IterationVisitsAllSetBits) {
  Bitset bits(200);
  std::vector<int> expected = {0, 1, 63, 64, 65, 127, 128, 199};
  for (int i : expected) bits.Set(i);
  std::vector<int> seen;
  for (int i = bits.NextSetBit(0); i >= 0; i = bits.NextSetBit(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70);
  EXPECT_EQ(bits.NextSetBit(69), 69);
  EXPECT_EQ(bits.NextSetBit(70), -1);
}

TEST(BitsetTest, BulkOperations) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  EXPECT_TRUE(a.Intersects(b));
  Bitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3);
  Bitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1);
  EXPECT_TRUE(i.Test(50));
  Bitset d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 1);
  EXPECT_TRUE(d.Test(3));
  EXPECT_TRUE(i.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(BitsetTest, EqualityAndToString) {
  Bitset a(10), b(10);
  a.Set(2);
  b.Set(2);
  EXPECT_EQ(a, b);
  b.Set(7);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(b.ToString(), "{2,7}");
}

TEST(WordVectorInternerTest, DeduplicatesKeys) {
  WordVectorInterner interner;
  EXPECT_EQ(interner.Intern({1, 2, 3}), 0);
  EXPECT_EQ(interner.Intern({4}), 1);
  EXPECT_EQ(interner.Intern({1, 2, 3}), 0);
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.KeyOf(1), (std::vector<uint64_t>{4}));
  EXPECT_EQ(interner.Find({1, 2, 3}), 0);
  EXPECT_EQ(interner.Find({9}), -1);
}

TEST(WordVectorInternerTest, FullHashCollisionsSpillToOverflow) {
  // Two distinct keys forced onto the same 64-bit hash: the second must get
  // its own id through the overflow map, and both must keep resolving by
  // full-key comparison afterwards.
  WordVectorInterner interner;
  const std::vector<uint64_t> first = {1, 2};
  const std::vector<uint64_t> second = {3, 4};
  constexpr uint64_t kHash = 0xdeadbeefcafe1234;
  int first_id = interner.InternHashed(first, kHash);
  int second_id = interner.InternHashed(second, kHash);
  EXPECT_NE(first_id, second_id);
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.InternHashed(first, kHash), first_id);
  EXPECT_EQ(interner.InternHashed(second, kHash), second_id);
  EXPECT_EQ(interner.FindHashed(first, kHash), first_id);
  EXPECT_EQ(interner.FindHashed(second, kHash), second_id);
  EXPECT_EQ(interner.FindHashed({5, 6}, kHash), -1);
  EXPECT_EQ(interner.KeyOf(first_id), first);
  EXPECT_EQ(interner.KeyOf(second_id), second);
}

TEST(WordVectorInternerTest, OverflowEntriesSurviveRehash) {
  // Force a collision pair early, then intern enough distinct keys to cross
  // several Grow() rehashes (initial capacity 64): the overflow entry and
  // every primary-table entry must still resolve to their original ids.
  WordVectorInterner interner;
  const std::vector<uint64_t> first = {100};
  const std::vector<uint64_t> second = {200};
  constexpr uint64_t kHash = 42;
  int first_id = interner.InternHashed(first, kHash);
  int second_id = interner.InternHashed(second, kHash);
  std::vector<int> ids;
  for (uint64_t i = 0; i < 300; ++i) {
    ids.push_back(interner.Intern({i, i + 1}));
  }
  EXPECT_EQ(interner.InternHashed(first, kHash), first_id);
  EXPECT_EQ(interner.InternHashed(second, kHash), second_id);
  EXPECT_EQ(interner.FindHashed(second, kHash), second_id);
  for (uint64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(interner.Find({i, i + 1}), ids[i]);
  }
  EXPECT_EQ(interner.size(), 302);
}

TEST(StringInternerTest, NamesRoundTrip) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.Intern("beta"), 1);
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.NameOf(1), "beta");
  EXPECT_EQ(interner.Find("gamma"), -1);
}

TEST(StringsTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(StrSplit("a  b c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ' '), (std::vector<std::string>{}));
  EXPECT_EQ(StrSplit("one", ','), (std::vector<std::string>{"one"}));
}

TEST(StringsTest, JoinAndStrip) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ToString(), "InvalidArgument: nope");
  Status exhausted = Status::ResourceExhausted("limit");
  EXPECT_EQ(exhausted.code(), Status::Code::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error(Status::InvalidArgument("bad"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), Status::Code::kInvalidArgument);
}

TEST(StatusTest, ExitCodesDistinguishEveryFailureClass) {
  EXPECT_EQ(ExitCodeForStatus(Status::Ok()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::DeadlineExceeded("x")), 4);
  // Cancellation used to share exit code 4 with deadline expiry; it must be
  // its own code so retry-on-timeout wrappers do not retry interrupts.
  EXPECT_EQ(ExitCodeForStatus(Status::Cancelled("x")), 5);
}

TEST(ThreadPoolTest, SharedGrowthKeepsEarlierPoolsUsable) {
  // Regression test: Shared(n) used to destroy and replace the process-wide
  // pool when asked to grow, racing any thread still running ParallelFor on
  // the old pointer. Now growth retains earlier pools: pointers stay valid
  // and runnable while other threads grow and use larger pools concurrently.
  ThreadPool* small = ThreadPool::Shared(2);
  ASSERT_GE(small->num_threads(), 2);
  constexpr int kIterations = 50;
  constexpr int64_t kItems = 1000;
  std::atomic<int64_t> total{0};
  std::atomic<bool> failed{false};
  std::thread hammer([&] {
    // Keeps the original pool busy with batches while the main thread
    // requests larger pools (the old code deleted `small` under us here).
    for (int i = 0; i < kIterations; ++i) {
      std::atomic<int64_t> sum{0};
      small->ParallelFor(kItems,
                         [&](int64_t j) { sum.fetch_add(j + 1); });
      if (sum.load() != kItems * (kItems + 1) / 2) failed.store(true);
      total.fetch_add(sum.load());
    }
  });
  for (int n = 3; n <= 6; ++n) {
    ThreadPool* grown = ThreadPool::Shared(n);
    ASSERT_GE(grown->num_threads(), n);
    std::atomic<int64_t> sum{0};
    grown->ParallelFor(kItems, [&](int64_t j) { sum.fetch_add(j + 1); });
    EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
  }
  hammer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(total.load(), kIterations * (kItems * (kItems + 1) / 2));
  // The original pointer still works after every growth call.
  std::atomic<int64_t> after{0};
  small->ParallelFor(kItems, [&](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), kItems);
  // Asking for fewer threads reuses an existing pool instead of shrinking.
  EXPECT_GE(ThreadPool::Shared(1)->num_threads(), 1);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsOnOnePoolAreSerialized) {
  // Regression test: two threads submitting ParallelFor to the same pool used
  // to corrupt the epoch/cursor protocol (lost iterations, hangs). The
  // submission mutex must make concurrent batches each run exactly once.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kBatches = 25;
  constexpr int64_t kItems = 500;
  std::atomic<int64_t> grand_total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int caller = 0; caller < kCallers; ++caller) {
    callers.emplace_back([&] {
      for (int batch = 0; batch < kBatches; ++batch) {
        std::atomic<int64_t> sum{0};
        pool.ParallelFor(kItems, [&](int64_t) { sum.fetch_add(1); });
        grand_total.fetch_add(sum.load());
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(grand_total.load(),
            int64_t{kCallers} * kBatches * kItems);
}

std::vector<char*> Argv(const std::vector<std::string>& args) {
  // ParseFlags takes argv as char**; the strings outlive the call.
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  return argv;
}

TEST(ParseFlagsTest, CollectsRepeatedFlags) {
  std::vector<std::string> args = {"prog", "cmd",  "--query", "a b",
                                   "--view", "v1=a", "--view",  "v2=b"};
  std::vector<char*> argv = Argv(args);
  StatusOr<FlagMap> flags =
      ParseFlags(static_cast<int>(argv.size()), argv.data(), 2);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->at("query"), std::vector<std::string>{"a b"});
  EXPECT_EQ(flags->at("view"), (std::vector<std::string>{"v1=a", "v2=b"}));
}

TEST(ParseFlagsTest, TrailingFlagWithoutValueSaysRequiresAValue) {
  // Regression test: `rpqi eval --db` used to fall through to the misleading
  // "unexpected argument '--db'" diagnostic.
  std::vector<std::string> args = {"prog", "eval", "--db"};
  std::vector<char*> argv = Argv(args);
  StatusOr<FlagMap> flags =
      ParseFlags(static_cast<int>(argv.size()), argv.data(), 2);
  ASSERT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(flags.status().message(), "flag --db requires a value");
}

TEST(ParseFlagsTest, TrailingFlagAfterValidFlagsStillDiagnosed) {
  std::vector<std::string> args = {"prog", "eval", "--query", "a", "--db"};
  std::vector<char*> argv = Argv(args);
  StatusOr<FlagMap> flags =
      ParseFlags(static_cast<int>(argv.size()), argv.data(), 2);
  ASSERT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().message(), "flag --db requires a value");
}

TEST(ParseFlagsTest, PositionalsAndBareDashesStayUnexpectedArguments) {
  for (const char* bad : {"positional", "-x", "--"}) {
    std::vector<std::string> args = {"prog", "cmd", bad, "value"};
    std::vector<char*> argv = Argv(args);
    StatusOr<FlagMap> flags =
        ParseFlags(static_cast<int>(argv.size()), argv.data(), 2);
    ASSERT_FALSE(flags.ok()) << bad;
    EXPECT_EQ(flags.status().message(),
              std::string("unexpected argument '") + bad + "'");
  }
}

TEST(WorkerPoolTest, RunsEveryAcceptedTaskExactlyOnce) {
  WorkerPool pool(4, 1024);
  std::atomic<int> ran{0};
  int accepted = 0;
  for (int i = 0; i < 500; ++i) {
    if (pool.TrySubmit([&] { ran.fetch_add(1); })) ++accepted;
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), accepted);
  EXPECT_EQ(accepted, 500);
}

TEST(WorkerPoolTest, RejectsWhenQueueFull) {
  WorkerPool pool(1, 2);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single worker so subsequent tasks pile up in the queue.
  ASSERT_TRUE(pool.TrySubmit([&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  }));
  // The worker may not have dequeued the blocker yet, so the queue has room
  // for at least one more task and rejects once it holds two.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.TrySubmit([&] { ran.fetch_add(1); })) ++accepted;
  }
  EXPECT_LE(accepted, 3);  // blocker possibly still queued + 2 slots
  EXPECT_LT(accepted, 10);
  release.store(true);
  pool.Drain();
  EXPECT_EQ(ran.load(), 1 + accepted);
  // After Drain, admission is closed for good.
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

TEST(WorkerPoolTest, DrainIsIdempotentAndImmediateWhenIdle) {
  WorkerPool pool(2, 4);
  pool.Drain();
  pool.Drain();
  EXPECT_FALSE(pool.TrySubmit([] {}));
  EXPECT_EQ(pool.QueuedNow(), 0);
}

TEST(WorkerPoolTest, DrainRacingSubmittersAndStatsReaders) {
  // Pins the swap-under-lock fix in Drain: it used to clear() the worker
  // vector off-lock, racing concurrent num_threads()/TrySubmit readers of
  // `threads_` (a data race TSan flags; on libstdc++ a size() read during
  // clear() could also return garbage). Drain now swaps the vector out under
  // queue_mu_ and joins the detached handles lock-free.
  for (int round = 0; round < 20; ++round) {
    WorkerPool pool(3, 64);
    std::atomic<bool> stop{false};
    std::atomic<int> ran{0};
    std::vector<std::thread> hammers;
    for (int t = 0; t < 2; ++t) {
      hammers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          pool.TrySubmit([&ran] { ran.fetch_add(1); });
          // Stats reads must stay well-defined mid-drain: 0..3 workers,
          // non-negative queue depth, never garbage.
          int n = pool.num_threads();
          EXPECT_GE(n, 0);
          EXPECT_LE(n, 3);
          EXPECT_GE(pool.QueuedNow(), 0);
        }
      });
    }
    pool.Drain();  // races the hammer threads by design
    EXPECT_EQ(pool.num_threads(), 0);
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : hammers) th.join();
    EXPECT_FALSE(pool.TrySubmit([] {}));
  }
}

// ---------------------------------------------------------------------------
// Spawn-failure degradation (fault-injected; satellite of the fault layer)

struct FaultGuard {
  FaultGuard() { fault::DisarmAll(); }
  ~FaultGuard() { fault::DisarmAll(); }
};

TEST(ThreadPoolTest, SpawnFailureDegradesToSerialParallelFor) {
  FaultGuard guard;
  obs::MetricsSnapshot before = obs::TakeMetricsSnapshot();
  // Every spawn attempt fails: the pool degrades to zero workers and
  // ParallelFor runs entirely on the caller — correct, just serial. No
  // exception may escape the constructor or ParallelFor.
  ASSERT_TRUE(fault::Configure("thread_pool.spawn=every:1").ok());
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&sum](int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
  obs::MetricsSnapshot delta = obs::TakeMetricsSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("thread_pool.spawn_failures"), 1);
}

TEST(ThreadPoolTest, PartialSpawnFailureKeepsEarlierWorkers) {
  FaultGuard guard;
  // The second spawn fails; the pool keeps the first worker (1 + caller).
  ASSERT_TRUE(fault::Configure("thread_pool.spawn=once:2").ok());
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 2);
  std::atomic<int64_t> count{0};
  pool.ParallelFor(50, [&count](int64_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(WorkerPoolTest, TotalSpawnFailureRunsTasksInlineOnSubmitter) {
  FaultGuard guard;
  ASSERT_TRUE(fault::Configure("worker_pool.spawn=every:1").ok());
  WorkerPool pool(3, 4);
  EXPECT_EQ(pool.num_threads(), 0);
  // Degraded to inline execution: TrySubmit still accepts and runs every
  // task (on this thread), so the serving loop stays live instead of
  // wedging with an always-full queue.
  std::atomic<int> ran{0};
  std::thread::id submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.TrySubmit([&ran, &ran_on] {
      ran.fetch_add(1, std::memory_order_relaxed);
      ran_on = std::this_thread::get_id();
    }));
  }
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(ran_on, submitter);
  pool.Drain();
  EXPECT_FALSE(pool.TrySubmit([] {}));  // drained pools stay closed
}

TEST(WorkerPoolTest, PartialSpawnFailureStillUsesWorkers) {
  FaultGuard guard;
  ASSERT_TRUE(fault::Configure("worker_pool.spawn=once:2").ok());
  WorkerPool pool(3, 16);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    while (!pool.TrySubmit(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); })) {
      std::this_thread::yield();  // bounded queue may momentarily fill
    }
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace rpqi
