#include <gtest/gtest.h>

#include "base/bitset.h"
#include "base/interner.h"
#include "base/status.h"
#include "base/strings.h"

namespace rpqi {
namespace {

TEST(BitsetTest, SetTestReset) {
  Bitset bits(130);
  EXPECT_EQ(bits.size(), 130);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3);
  bits.Reset(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2);
}

TEST(BitsetTest, IterationVisitsAllSetBits) {
  Bitset bits(200);
  std::vector<int> expected = {0, 1, 63, 64, 65, 127, 128, 199};
  for (int i : expected) bits.Set(i);
  std::vector<int> seen;
  for (int i = bits.NextSetBit(0); i >= 0; i = bits.NextSetBit(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70);
  EXPECT_EQ(bits.NextSetBit(69), 69);
  EXPECT_EQ(bits.NextSetBit(70), -1);
}

TEST(BitsetTest, BulkOperations) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  EXPECT_TRUE(a.Intersects(b));
  Bitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3);
  Bitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1);
  EXPECT_TRUE(i.Test(50));
  Bitset d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 1);
  EXPECT_TRUE(d.Test(3));
  EXPECT_TRUE(i.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(BitsetTest, EqualityAndToString) {
  Bitset a(10), b(10);
  a.Set(2);
  b.Set(2);
  EXPECT_EQ(a, b);
  b.Set(7);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(b.ToString(), "{2,7}");
}

TEST(WordVectorInternerTest, DeduplicatesKeys) {
  WordVectorInterner interner;
  EXPECT_EQ(interner.Intern({1, 2, 3}), 0);
  EXPECT_EQ(interner.Intern({4}), 1);
  EXPECT_EQ(interner.Intern({1, 2, 3}), 0);
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.KeyOf(1), (std::vector<uint64_t>{4}));
  EXPECT_EQ(interner.Find({1, 2, 3}), 0);
  EXPECT_EQ(interner.Find({9}), -1);
}

TEST(StringInternerTest, NamesRoundTrip) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.Intern("beta"), 1);
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.NameOf(1), "beta");
  EXPECT_EQ(interner.Find("gamma"), -1);
}

TEST(StringsTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(StrSplit("a  b c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ' '), (std::vector<std::string>{}));
  EXPECT_EQ(StrSplit("one", ','), (std::vector<std::string>{"one"}));
}

TEST(StringsTest, JoinAndStrip) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ToString(), "InvalidArgument: nope");
  Status exhausted = Status::ResourceExhausted("limit");
  EXPECT_EQ(exhausted.code(), Status::Code::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error(Status::InvalidArgument("bad"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace rpqi
