// Tests for the execution-governance layer: Budget deadlines, cooperative
// cancellation, state quotas, and the certified-partial degradation of the
// rewriting pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "answer/cda.h"
#include "answer/oda.h"
#include "automata/ops.h"
#include "base/budget.h"
#include "base/status.h"
#include "graphdb/eval.h"
#include "graphdb/io.h"
#include "regex/parser.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "workload/scenario.h"

namespace rpqi {
namespace {

using Clock = Budget::Clock;
using std::chrono::milliseconds;

int64_t ElapsedMs(Clock::time_point start) {
  return std::chrono::duration_cast<milliseconds>(Clock::now() - start)
      .count();
}

/// The classic subset blowup (a|b)* a (a|b)^n: the minimal DFA needs 2^n
/// states, so determinization runs long enough to observe cancellation.
Nfa BlowupNfa(int n) {
  Nfa nfa(2);
  int start = nfa.AddState();
  nfa.SetInitial(start);
  nfa.AddTransition(start, 0, start);
  nfa.AddTransition(start, 1, start);
  int previous = start;
  for (int i = 0; i <= n; ++i) {
    int state = nfa.AddState();
    if (i == 0) {
      nfa.AddTransition(previous, 0, state);
    } else {
      nfa.AddTransition(previous, 0, state);
      nfa.AddTransition(previous, 1, state);
    }
    previous = state;
  }
  nfa.SetAccepting(previous);
  return nfa;
}

struct CompiledHardInstance {
  Nfa query{0};
  std::vector<Nfa> views;
};

CompiledHardInstance CompileHardInstance(int k) {
  HardRewritingInstance instance = MakeHardRewritingInstance(k);
  CompiledHardInstance compiled;
  compiled.query = MustCompileRegex(instance.query, instance.alphabet);
  for (const RegexPtr& def : instance.view_definitions) {
    compiled.views.push_back(MustCompileRegex(def, instance.alphabet));
  }
  return compiled;
}

// --- Status plumbing -------------------------------------------------------

TEST(StatusTest, NewCodesRoundTrip) {
  Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), Status::Code::kDeadlineExceeded);
  EXPECT_NE(deadline.ToString().find("DeadlineExceeded"), std::string::npos);
  Status cancelled = Status::Cancelled("stop");
  EXPECT_EQ(cancelled.code(), Status::Code::kCancelled);
  EXPECT_NE(cancelled.ToString().find("Cancelled"), std::string::npos);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto passthrough = [](Status status) -> Status {
    RPQI_RETURN_IF_ERROR(status);
    return Status::Ok();
  };
  EXPECT_TRUE(passthrough(Status::Ok()).ok());
  EXPECT_EQ(passthrough(Status::Cancelled("x")).code(),
            Status::Code::kCancelled);
}

TEST(StatusTest, AssignOrReturnUnwrapsAndPropagates) {
  auto doubler = [](StatusOr<int> input) -> StatusOr<int> {
    RPQI_ASSIGN_OR_RETURN(int value, input);
    return 2 * value;
  };
  StatusOr<int> ok = doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> error = doubler(Status::ResourceExhausted("full"));
  EXPECT_EQ(error.status().code(), Status::Code::kResourceExhausted);
}

// --- Budget primitives -----------------------------------------------------

TEST(BudgetTest, UnlimitedBudgetAlwaysPasses) {
  Budget budget = Budget::Unlimited();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(budget.Check().ok());
  }
  EXPECT_TRUE(budget.ChargeStates(int64_t{1} << 40).ok());
}

TEST(BudgetTest, DeadlineExpiresAndIsSticky) {
  Budget budget = Budget::WithDeadline(milliseconds(1));
  std::this_thread::sleep_for(milliseconds(10));
  // The clock is consulted every kStride calls, so loop well past the stride.
  Status status = Status::Ok();
  for (int i = 0; i < 10000 && status.ok(); ++i) status = budget.Check();
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  // Sticky: the very next call fails without any stride delay.
  EXPECT_EQ(budget.Check().code(), Status::Code::kDeadlineExceeded);
}

TEST(BudgetTest, StateQuotaExhausts) {
  Budget budget;
  budget.set_max_states(10);
  EXPECT_TRUE(budget.ChargeStates(10).ok());
  EXPECT_EQ(budget.RemainingStates(), 0);
  EXPECT_EQ(budget.ChargeStates(1).code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(budget.Check().code(), Status::Code::kResourceExhausted);
}

TEST(BudgetTest, CancellationFlagIsObservedImmediately) {
  std::atomic<bool> cancel{false};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  EXPECT_TRUE(budget.Check().ok());
  cancel.store(true);
  EXPECT_EQ(budget.Check().code(), Status::Code::kCancelled);
}

TEST(BudgetTest, GraceBudgetExtendsTheWindow) {
  Budget budget = Budget::WithDeadline(milliseconds(1));
  std::this_thread::sleep_for(milliseconds(10));
  Status status = Status::Ok();
  for (int i = 0; i < 10000 && status.ok(); ++i) status = budget.Check();
  ASSERT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  // A generous grace factor re-opens the window (1ms * 100 = 100ms total,
  // of which only ~10ms have elapsed).
  Budget grace = budget.GraceBudget(100.0);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(grace.Check().ok());
  }
}

TEST(BudgetTest, NullSafeHelpers) {
  EXPECT_TRUE(BudgetCheck(nullptr).ok());
  EXPECT_TRUE(BudgetCharge(nullptr, int64_t{1} << 50).ok());
}

// --- Determinization and containment ---------------------------------------

TEST(BudgetDeterminizeTest, PresetCancellationStopsImmediately) {
  std::atomic<bool> cancel{true};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  StatusOr<Dfa> dfa =
      DeterminizeWithLimit(BlowupNfa(20), int64_t{1} << 30, &budget);
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), Status::Code::kCancelled);
}

TEST(BudgetDeterminizeTest, MidFlightCancellationStopsPromptly) {
  // 2^24 subsets would take far longer than the cancellation delay; the
  // determinization must stop within a small multiple of the delay instead
  // of running to completion.
  std::atomic<bool> cancel{false};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  Clock::time_point start = Clock::now();
  std::thread canceller([&] {
    std::this_thread::sleep_for(milliseconds(20));
    cancel.store(true);
  });
  StatusOr<Dfa> dfa =
      DeterminizeWithLimit(BlowupNfa(24), int64_t{1} << 30, &budget);
  canceller.join();
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), Status::Code::kCancelled);
  EXPECT_LT(ElapsedMs(start), 5000) << "cancellation was not prompt";
}

TEST(BudgetDeterminizeTest, StateQuotaYieldsResourceExhausted) {
  Budget budget;
  budget.set_max_states(16);
  StatusOr<Dfa> dfa =
      DeterminizeWithLimit(BlowupNfa(10), int64_t{1} << 30, &budget);
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), Status::Code::kResourceExhausted);
}

TEST(BudgetContainmentTest, CancellationPropagates) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("a");
  alphabet.AddRelation("b");
  Nfa q1 = MustCompileRegex(MustParseRegex("(a | b)* a"), alphabet);
  Nfa q2 = MustCompileRegex(MustParseRegex("(a | b)*"), alphabet);
  std::atomic<bool> cancel{true};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  StatusOr<bool> contained = RpqiContainedWithBudget(q1, q2, &budget);
  ASSERT_FALSE(contained.ok());
  EXPECT_EQ(contained.status().code(), Status::Code::kCancelled);
  // Unbudgeted, the same check succeeds.
  EXPECT_TRUE(RpqiContained(q1, q2));
}

// --- Rewriting pipeline ----------------------------------------------------

TEST(BudgetRewritingTest, TightDeadlineFailsFastWithoutPartial) {
  CompiledHardInstance hard = CompileHardInstance(14);
  Budget budget = Budget::WithDeadline(milliseconds(1));
  RewritingOptions options;
  options.budget = &budget;
  options.allow_partial = false;
  Clock::time_point start = Clock::now();
  StatusOr<MaximalRewriting> rewriting =
      ComputeMaximalRewriting(hard.query, hard.views, options);
  ASSERT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), Status::Code::kDeadlineExceeded);
  // Generous CI bound; the point is "milliseconds, not the full 2EXPTIME run".
  EXPECT_LT(ElapsedMs(start), 5000);
}

TEST(BudgetRewritingTest, TightDeadlineDegradesToFlaggedPartial) {
  CompiledHardInstance hard = CompileHardInstance(14);
  Budget budget = Budget::WithDeadline(milliseconds(50));
  RewritingOptions options;
  options.budget = &budget;
  options.allow_partial = true;
  Clock::time_point start = Clock::now();
  StatusOr<MaximalRewriting> rewriting =
      ComputeMaximalRewriting(hard.query, hard.views, options);
  int64_t elapsed_ms = ElapsedMs(start);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  EXPECT_FALSE(rewriting->exhaustive);
  EXPECT_FALSE(rewriting->degradation_cause.ok());
  // The acceptance bar is ~2x the requested deadline; allow slack for slow CI.
  EXPECT_LT(elapsed_ms, 5000);
  // Everything the partial rewriting accepts must be individually certified.
  for (const std::vector<int>& word :
       {std::vector<int>{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}}) {
    if (rewriting->dfa.Accepts(word)) {
      EXPECT_TRUE(IsWordInMaximalRewriting(hard.query, hard.views, word));
    }
  }
}

TEST(BudgetRewritingTest, PartialRewritingIsSoundAndCompleteUpToLength) {
  // Feasible instance (va = p, vb = q): force degradation through a tiny
  // product-state cap, then compare against the exact rewriting word by word.
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  alphabet.AddRelation("q");
  Nfa query = MustCompileRegex(MustParseRegex("p (q^- p)*"), alphabet);
  std::vector<Nfa> views = {MustCompileRegex(MustParseRegex("p"), alphabet),
                            MustCompileRegex(MustParseRegex("q"), alphabet)};

  StatusOr<MaximalRewriting> exact = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(exact->exhaustive);

  RewritingOptions options;
  options.max_product_states = 4;  // guaranteed to trip
  options.allow_partial = true;
  StatusOr<MaximalRewriting> partial =
      ComputeMaximalRewriting(query, views, options);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_FALSE(partial->exhaustive);
  EXPECT_EQ(partial->degradation_cause.code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(partial->partial_word_length, options.partial_max_word_length);
  EXPECT_GT(partial->stats.partial_words_checked, 0);

  // Enumerate all view words up to one past the certified length.
  std::vector<std::vector<int>> words = {{}};
  std::vector<std::vector<int>> frontier = {{}};
  for (int len = 1; len <= partial->partial_word_length + 1; ++len) {
    std::vector<std::vector<int>> next;
    for (const std::vector<int>& word : frontier) {
      for (int symbol = 0; symbol < 4; ++symbol) {
        std::vector<int> extended = word;
        extended.push_back(symbol);
        next.push_back(extended);
        words.push_back(extended);
      }
    }
    frontier = std::move(next);
  }
  for (const std::vector<int>& word : words) {
    bool in_partial = partial->dfa.Accepts(word);
    bool in_exact = exact->dfa.Accepts(word);
    // Soundness: the partial rewriting is an under-approximation everywhere.
    EXPECT_LE(in_partial, in_exact) << "word size " << word.size();
    // Completeness up to the certified length.
    if (static_cast<int>(word.size()) <= partial->partial_word_length) {
      EXPECT_EQ(in_partial, in_exact) << "word size " << word.size();
    } else {
      EXPECT_FALSE(in_partial);  // longer words were never examined
    }
  }
}

TEST(BudgetRewritingTest, CancellationNeverDegradesToPartial) {
  CompiledHardInstance hard = CompileHardInstance(10);
  std::atomic<bool> cancel{true};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  RewritingOptions options;
  options.budget = &budget;
  options.allow_partial = true;
  StatusOr<MaximalRewriting> rewriting =
      ComputeMaximalRewriting(hard.query, hard.views, options);
  ASSERT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), Status::Code::kCancelled);
}

TEST(BudgetRewritingTest, NonEmptinessHonorsBudget) {
  CompiledHardInstance hard = CompileHardInstance(12);
  Budget budget = Budget::WithDeadline(milliseconds(1));
  std::this_thread::sleep_for(milliseconds(5));
  RewritingOptions options;
  options.budget = &budget;
  StatusOr<bool> nonempty =
      MaximalRewritingNonEmpty(hard.query, hard.views, options);
  ASSERT_FALSE(nonempty.ok());
  EXPECT_EQ(nonempty.status().code(), Status::Code::kDeadlineExceeded);
}

// --- Graph evaluation and answering ----------------------------------------

TEST(BudgetEvalTest, QuotaAndParityWithUnbudgetedEval) {
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(
      "n0 r n1\nn1 r n2\nn2 r n0\nn0 s n2\n", &alphabet);
  ASSERT_TRUE(db.ok());
  Nfa query = MustCompileRegex(MustParseRegex("r* s"), alphabet);

  StatusOr<std::vector<std::pair<int, int>>> budgeted =
      EvalRpqiAllPairsWithBudget(*db, query, nullptr);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_EQ(*budgeted, EvalRpqiAllPairs(*db, query));

  Budget tiny;
  tiny.set_max_states(1);
  StatusOr<Bitset> from = EvalRpqiFromWithBudget(*db, query, 0, &tiny);
  ASSERT_FALSE(from.ok());
  EXPECT_EQ(from.status().code(), Status::Code::kResourceExhausted);
}

AnsweringInstance SmallAnsweringInstance() {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = MustCompileRegex(MustParseRegex("p"), alphabet);
  View view;
  view.definition = MustCompileRegex(MustParseRegex("p"), alphabet);
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));
  return instance;
}

TEST(BudgetAnswerTest, CdaPropagatesCancellation) {
  AnsweringInstance instance = SmallAnsweringInstance();
  std::atomic<bool> cancel{true};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  CdaOptions options;
  options.budget = &budget;
  StatusOr<CdaResult> result = CertainAnswerCda(instance, 0, 1, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCancelled);
  // Unbudgeted, the probe decides (sound view p with (0,1) forces certainty).
  StatusOr<CdaResult> plain = CertainAnswerCda(instance, 0, 1);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->certain);
}

TEST(BudgetAnswerTest, OdaPropagatesCancellation) {
  AnsweringInstance instance = SmallAnsweringInstance();
  std::atomic<bool> cancel{true};
  Budget budget;
  budget.set_cancel_flag(&cancel);
  OdaOptions options;
  options.budget = &budget;
  StatusOr<OdaResult> result = CertainAnswerOda(instance, 0, 1, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCancelled);
  StatusOr<OdaResult> plain = CertainAnswerOda(instance, 0, 1);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->certain);
}

}  // namespace
}  // namespace rpqi
