#include <gtest/gtest.h>

#include <random>

#include "answer/oda.h"
#include "answer/views.h"
#include "automata/dot.h"
#include "automata/lazy.h"
#include "automata/ops.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/graph_gen.h"
#include "workload/regex_gen.h"
#include "workload/scenario.h"

namespace rpqi {
namespace {

TEST(OdaSolverTest, AmortizesAcrossProbes) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 3;
  instance.query = MustCompileRegex(MustParseRegex("p p"), alphabet);
  View view;
  view.definition = MustCompileRegex(MustParseRegex("p"), alphabet);
  view.extension = {{0, 1}, {1, 2}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));

  OdaSolver solver(instance);
  // Reuse the solver for every pair; answers must match the one-shot API.
  for (int c = 0; c < 3; ++c) {
    for (int d = 0; d < 3; ++d) {
      StatusOr<OdaResult> reused = solver.CertainAnswer(c, d);
      StatusOr<OdaResult> fresh = CertainAnswerOda(instance, c, d);
      ASSERT_TRUE(reused.ok());
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(reused->certain, fresh->certain)
          << "(" << c << "," << d << ")";
    }
  }
  // Mixing certain and possible probes on the same solver.
  StatusOr<OdaResult> possible = solver.PossibleAnswer(2, 0);
  ASSERT_TRUE(possible.ok());
  EXPECT_TRUE(possible->certain);  // some DB adds a path back
}

TEST(NormalizeCompleteViewsTest, WidensAlphabetAndConvertsAssumptions) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = MustCompileRegex(MustParseRegex("p"), alphabet);
  View complete;
  complete.definition = MustCompileRegex(MustParseRegex("p p"), alphabet);
  complete.extension = {{0, 0}};
  complete.assumption = ViewAssumption::kComplete;
  instance.views.push_back(complete);
  View sound = complete;
  sound.assumption = ViewAssumption::kSound;
  instance.views.push_back(sound);

  AnsweringInstance normalized = NormalizeCompleteViews(instance);
  ASSERT_EQ(normalized.views.size(), 2u);
  EXPECT_EQ(normalized.views[0].assumption, ViewAssumption::kExact);
  EXPECT_EQ(normalized.views[1].assumption, ViewAssumption::kSound);
  // One fresh relation was appended for the one complete view.
  EXPECT_EQ(normalized.query.num_symbols(),
            instance.query.num_symbols() + 2);
  // The converted definition accepts the fresh relation as an alternative.
  int fresh_symbol = instance.query.num_symbols();
  EXPECT_TRUE(Accepts(normalized.views[0].definition, {fresh_symbol}));
  EXPECT_FALSE(Accepts(normalized.views[1].definition, {fresh_symbol}));
  // Idempotent on instances without complete views.
  AnsweringInstance again = NormalizeCompleteViews(normalized);
  EXPECT_EQ(again.query.num_symbols(), normalized.query.num_symbols());
}

TEST(DotExportTest, MentionsStatesAndLabels) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  Nfa nfa = MustCompileRegex(MustParseRegex("p p^-"), alphabet);
  std::string dot = NfaToDot(nfa, [&](int s) { return alphabet.SymbolName(s); });
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("p^-"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);

  std::string dfa_dot = DfaToDot(Determinize(nfa));
  EXPECT_NE(dfa_dot.find("start"), std::string::npos);
}

TEST(LazyImageSubsetDfaTest, MatchesEagerProjection) {
  // Image of (ab)* under erasing b = a*.(even-length check erased)
  Nfa nfa(2);
  int s0 = nfa.AddState();
  int s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s0);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 1, s0);

  Dfa inner = Determinize(nfa);
  LazyDfaFromDfa inner_lazy(inner);
  LazyImageSubsetDfa image(&inner_lazy, {0, kEpsilon}, 1);
  // a^k is in the image for every k.
  int state = image.StartState();
  EXPECT_TRUE(image.IsAccepting(state));
  for (int i = 0; i < 5; ++i) {
    state = image.Step(state, 0);
    EXPECT_TRUE(image.IsAccepting(state));
  }
  // Complemented flavour flips.
  LazyImageSubsetDfa complement(&inner_lazy, {0, kEpsilon}, 1,
                                /*complement=*/true);
  EXPECT_FALSE(complement.IsAccepting(complement.StartState()));
}

TEST(WorkloadTest, RandomRegexRespectsOptions) {
  std::mt19937_64 rng(303);
  RandomRegexOptions options;
  options.relation_names = {"x"};
  options.target_size = 10;
  options.inverse_probability = 0.0;
  for (int i = 0; i < 20; ++i) {
    RegexPtr e = RandomRegex(rng, options);
    EXPECT_LE(RegexSize(e), 2 * options.target_size + 4);
    std::string text = RegexToString(e);
    EXPECT_EQ(text.find("^-"), std::string::npos) << text;
  }
  options.inverse_probability = 1.0;
  bool saw_inverse = false;
  for (int i = 0; i < 10; ++i) {
    if (RegexToString(RandomRegex(rng, options)).find("^-") !=
        std::string::npos) {
      saw_inverse = true;
    }
  }
  EXPECT_TRUE(saw_inverse);
}

TEST(WorkloadTest, HardRewritingInstanceHasAdvertisedBlowup) {
  for (int k = 0; k <= 3; ++k) {
    HardRewritingInstance instance = MakeHardRewritingInstance(k);
    Nfa query = MustCompileRegex(instance.query, instance.alphabet);
    std::vector<Nfa> views;
    for (const RegexPtr& def : instance.view_definitions) {
      views.push_back(MustCompileRegex(def, instance.alphabet));
    }
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views);
    ASSERT_TRUE(rewriting.ok());
    EXPECT_EQ(rewriting->stats.rewriting_states, (1 << (k + 1)) + 1)
        << "k=" << k;
  }
}

TEST(RewritingToStringTest, RoundTripsThroughTheParser) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("a");
  alphabet.AddRelation("b");
  Nfa query = MustCompileRegex(MustParseRegex("a b^- | b a*"), alphabet);
  std::vector<Nfa> views = {MustCompileRegex(MustParseRegex("a"), alphabet),
                            MustCompileRegex(MustParseRegex("b"), alphabet)};
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  ASSERT_TRUE(rewriting.ok());
  ASSERT_FALSE(rewriting->empty);
  // Reparse the printed rewriting over fresh relations named like the views
  // and compare its language with the rewriting DFA.
  std::string text = RewritingToString(rewriting->dfa, {"va", "vb"});
  SignedAlphabet view_alphabet;
  view_alphabet.AddRelation("va");
  view_alphabet.AddRelation("vb");
  Nfa reparsed = MustCompileRegex(MustParseRegex(text), view_alphabet);
  EXPECT_TRUE(AreEquivalent(reparsed, Trim(DfaToNfa(rewriting->dfa)))) << text;
}

}  // namespace
}  // namespace rpqi
