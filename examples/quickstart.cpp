// Quickstart for the rpqi library: parse a regular path query with inverse,
// compute its maximal rewriting over a set of views (Section 4 of Calvanese,
// De Giacomo, Lenzerini, Vardi, PODS 2000), check exactness, and answer the
// query from materialized view extensions only.
//
// Run: ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "graphdb/eval.h"
#include "graphdb/graph.h"
#include "graphdb/io.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

int main() {
  using namespace rpqi;

  // --- 1. A small graph database (edge-per-line text format).
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(
      "alice worksFor acme\n"
      "bob worksFor acme\n"
      "carol worksFor initech\n"
      "acme partnerOf initech\n"
      "initech partnerOf globex\n",
      &alphabet);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // --- 2. The query: colleagues-or-partners reachable from a person, using
  // the inverse operator to go from a company back to its employees.
  //   colleagues(x,y): x worksFor c, y worksFor c  ⇒  worksFor worksFor⁻
  RegexPtr query_expr = MustParseRegex("worksFor partnerOf* worksFor^-");
  Nfa query = MustCompileRegex(query_expr, alphabet);
  std::printf("query: %s\n", RegexToString(query_expr).c_str());

  // --- 3. Views available as materialized data.
  std::vector<std::string> view_names = {"employer", "partner"};
  std::vector<RegexPtr> view_exprs = {MustParseRegex("worksFor"),
                                      MustParseRegex("partnerOf")};
  std::vector<Nfa> views;
  for (const RegexPtr& expr : view_exprs) {
    views.push_back(MustCompileRegex(expr, alphabet));
  }

  // --- 4. The maximal rewriting over the view alphabet (with inverse!).
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  if (!rewriting.ok()) {
    std::fprintf(stderr, "%s\n", rewriting.status().ToString().c_str());
    return 1;
  }
  std::printf("maximal rewriting: %s\n",
              RewritingToString(rewriting->dfa, view_names).c_str());
  std::printf("rewriting is %s\n",
              IsExactRewriting(query, views, rewriting->dfa)
                  ? "EXACT (equivalent to the query on every database)"
                  : "maximal but not exact");
  std::printf("pipeline sizes: |A1|=%d two-way states, %lld lazy A2 states, "
              "|A2∩A3|=%d, |A4|=%d, |R|=%d\n",
              rewriting->stats.a1_states,
              static_cast<long long>(rewriting->stats.a2_states_discovered),
              rewriting->stats.product_states, rewriting->stats.a4_states,
              rewriting->stats.rewriting_states);

  // --- 5. Materialize the views and answer the query from them alone.
  std::vector<std::vector<std::pair<int, int>>> extensions;
  for (const Nfa& view : views) {
    extensions.push_back(EvalRpqiAllPairs(*db, view));
  }
  auto answers = EvaluateRewriting(rewriting->dfa, db->NumNodes(), extensions);
  std::printf("answers computed from the views:\n");
  for (const auto& [x, y] : answers) {
    std::string from(db->NodeName(x)), to(db->NodeName(y));
    std::printf("  (%s, %s)\n", from.c_str(), to.c_str());
  }

  // --- 6. Sanity: compare with direct evaluation on the raw database.
  auto direct = EvalRpqiAllPairs(*db, query);
  std::printf("direct evaluation agrees: %s\n",
              answers == direct ? "yes" : "NO (rewriting not exact here)");
  return 0;
}
