// The paper's Example 1: a database of software modules where
//   hasSubmodule(m1, m2) — m2 is a module defined inside m1,
//   containsVar(m, v)    — v is a variable defined in module m,
// and the RPQI
//   (hasSubmodule^-)* (containsVar | hasSubmodule)
// computes the pairs (m, x) such that x is visible inside m under Algol-like
// scoping rules. We generate a random module tree, answer the visibility
// query directly, rewrite it over navigation views, and show both agree.
//
// Run: ./module_visibility [num_modules] [num_variables] [seed]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "graphdb/eval.h"
#include "regex/printer.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace rpqi;
  int num_modules = argc > 1 ? std::atoi(argv[1]) : 8;
  int num_variables = argc > 2 ? std::atoi(argv[2]) : 5;
  unsigned seed = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2026;

  std::mt19937_64 rng(seed);
  SoftwareModulesScenario scenario =
      MakeSoftwareModulesScenario(rng, num_modules, num_variables);
  std::printf("modules: %d, variables: %d, edges: %lld\n", num_modules,
              num_variables, static_cast<long long>(scenario.db.NumEdges()));
  std::printf("query: %s\n",
              RegexToString(scenario.visibility_query).c_str());

  Nfa query = MustCompileRegex(scenario.visibility_query, scenario.alphabet);

  // Direct evaluation: visibility sets per module.
  for (int m = 0; m < num_modules; ++m) {
    Bitset visible = EvalRpqiFrom(scenario.db, query, m);
    std::printf("  visible in %-9s:", std::string(scenario.db.NodeName(m)).c_str());
    for (int x = visible.NextSetBit(0); x >= 0; x = visible.NextSetBit(x + 1)) {
      std::printf(" %s", std::string(scenario.db.NodeName(x)).c_str());
    }
    std::printf("\n");
  }

  // View-based processing with the navigation views
  //   up        = hasSubmodule^-
  //   downOrVar = containsVar | hasSubmodule
  std::vector<Nfa> views;
  for (const RegexPtr& def : scenario.view_definitions) {
    views.push_back(MustCompileRegex(def, scenario.alphabet));
  }
  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  if (!rewriting.ok()) {
    std::fprintf(stderr, "%s\n", rewriting.status().ToString().c_str());
    return 1;
  }
  std::printf("rewriting over views {up, downOrVar}: %s (%s)\n",
              RewritingToString(rewriting->dfa, scenario.view_names).c_str(),
              IsExactRewriting(query, views, rewriting->dfa) ? "exact"
                                                             : "maximal");

  std::vector<std::vector<std::pair<int, int>>> extensions;
  for (const Nfa& view : views) {
    extensions.push_back(EvalRpqiAllPairs(scenario.db, view));
  }
  auto from_views =
      EvaluateRewriting(rewriting->dfa, scenario.db.NumNodes(), extensions);
  auto direct = EvalRpqiAllPairs(scenario.db, query);
  std::printf("view-based answers: %zu pairs; direct answers: %zu pairs; %s\n",
              from_views.size(), direct.size(),
              from_views == direct ? "identical" : "DIFFER");
  return from_views == direct ? 0 : 1;
}
