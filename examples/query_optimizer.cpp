// View-based query optimization: when materialized views are cheaper to scan
// than the raw graph, an exact rewriting lets the optimizer answer the query
// without touching base data at all; a maximal (non-exact) rewriting still
// yields a sound partial answer. This example contrasts the two situations
// and reports simple cost counters (edges scanned).
//
// Run: ./query_optimizer [num_nodes] [seed]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "graphdb/eval.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/graph_gen.h"

int main(int argc, char** argv) {
  using namespace rpqi;
  int num_nodes = argc > 1 ? std::atoi(argv[1]) : 30;
  unsigned seed = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 7;

  std::mt19937_64 rng(seed);
  RandomGraphOptions graph_options;
  graph_options.num_nodes = num_nodes;
  graph_options.num_relations = 2;  // cites (0), sameVenue (1)
  graph_options.average_out_degree = 2.5;
  GraphDb db = RandomGraph(rng, graph_options);

  SignedAlphabet alphabet;
  alphabet.AddRelation("cites");
  alphabet.AddRelation("sameVenue");

  // Query: co-citation closure — papers reachable by alternating a citation
  // with a backwards citation (papers citing a common source), any depth.
  RegexPtr query_expr = MustParseRegex("(cites cites^-)+");
  Nfa query = MustCompileRegex(query_expr, alphabet);

  struct Plan {
    const char* name;
    std::vector<std::string> view_names;
    std::vector<RegexPtr> view_exprs;
  };
  Plan plans[] = {
      {"materialized co-citation step",
       {"coCited"},
       {MustParseRegex("cites cites^-")}},
      {"citation lists only",
       {"out", "venue"},
       {MustParseRegex("cites"), MustParseRegex("sameVenue")}},
      {"venue view only (cannot express the query)",
       {"venue"},
       {MustParseRegex("sameVenue")}},
  };

  auto direct = EvalRpqiAllPairs(db, query);
  std::printf(
      "query: %s  — direct evaluation: %zu answers, %lld edges scanned\n",
      RegexToString(query_expr).c_str(), direct.size(),
      static_cast<long long>(db.NumEdges()));

  for (const Plan& plan : plans) {
    std::vector<Nfa> views;
    for (const RegexPtr& expr : plan.view_exprs) {
      views.push_back(MustCompileRegex(expr, alphabet));
    }
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views);
    if (!rewriting.ok()) {
      std::fprintf(stderr, "%s\n", rewriting.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<std::pair<int, int>>> extensions;
    int view_edges = 0;
    for (const Nfa& view : views) {
      extensions.push_back(EvalRpqiAllPairs(db, view));
      view_edges += static_cast<int>(extensions.back().size());
    }
    bool exact = !rewriting->empty &&
                 IsExactRewriting(query, views, rewriting->dfa);
    auto from_views =
        EvaluateRewriting(rewriting->dfa, db.NumNodes(), extensions);

    std::printf("plan '%s':\n", plan.name);
    if (rewriting->empty) {
      std::printf("  rewriting: EMPTY — optimizer must fall back to base data\n");
      continue;
    }
    std::printf("  rewriting: %s\n",
                RewritingToString(rewriting->dfa, plan.view_names).c_str());
    std::printf("  %s; answers from views: %zu/%zu, view edges scanned: %d\n",
                exact ? "EXACT — base data not needed"
                      : "maximal only — sound partial answer",
                from_views.size(), direct.size(), view_edges);
  }
  return 0;
}
