// Data integration with sound sources (Section 5): the mediated database is
// hidden; all we have are view extensions delivered by autonomous sources,
// each known to be sound (it returns SOME of the answers to its definition,
// not necessarily all). Certain answers are the pairs that hold in EVERY
// database consistent with the sources — computed here under both the closed
// and the open domain assumption, showing where they differ.
//
// Run: ./data_integration

#include <cstdio>

#include "answer/cda.h"
#include "answer/oda.h"
#include "answer/views.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

int main() {
  using namespace rpqi;

  // Mediated schema: flight(x,y) — a direct flight from x to y.
  // Objects: 0 = ROM, 1 = FRA, 2 = HOU.
  SignedAlphabet alphabet;
  alphabet.AddRelation("flight");
  const char* names[] = {"ROM", "FRA", "HOU"};

  AnsweringInstance instance;
  instance.num_objects = 3;
  // Source 1 ("EU routes"): knows some one-stop connections from Rome.
  //   def = flight flight, ext = {(ROM, HOU)} — sound: the connection exists,
  //   but the stopover airport is unknown (it may not even be in our object
  //   set: an open-domain phenomenon).
  {
    View source;
    source.definition =
        MustCompileRegex(MustParseRegex("flight flight"), alphabet);
    source.extension = {{0, 2}};
    source.assumption = ViewAssumption::kSound;
    instance.views.push_back(std::move(source));
  }
  // Source 2 ("direct routes"): sound list of direct flights.
  {
    View source;
    source.definition = MustCompileRegex(MustParseRegex("flight"), alphabet);
    source.extension = {{1, 2}};
    source.assumption = ViewAssumption::kSound;
    instance.views.push_back(std::move(source));
  }

  // CDA sweep: all pairs, all queries (the closed-domain solver is cheap).
  auto report_cda = [&](const char* query_text) {
    instance.query = MustCompileRegex(MustParseRegex(query_text), alphabet);
    std::printf("query %-36s | certain pairs under CDA:", query_text);
    for (int c = 0; c < 3; ++c) {
      for (int d = 0; d < 3; ++d) {
        StatusOr<CdaResult> cda = CertainAnswerCda(instance, c, d);
        if (cda.ok() && cda->certain) {
          std::printf(" (%s,%s)", names[c], names[d]);
        }
      }
    }
    std::printf("\n");
  };
  report_cda("flight flight");
  report_cda("flight (flight | %eps) (flight | %eps)");
  report_cda("flight");
  report_cda("flight flight flight^- flight^-");
  report_cda("flight^-");

  // ODA spot checks on the interesting pairs: the open-domain procedure pays
  // for the automata pipeline, so we probe rather than sweep.
  auto report_oda = [&](const char* query_text, int c, int d) {
    instance.query = MustCompileRegex(MustParseRegex(query_text), alphabet);
    StatusOr<OdaResult> oda = CertainAnswerOda(instance, c, d);
    std::printf("ODA certain %-22s (%s,%s): %s\n", query_text, names[c],
                names[d],
                oda.ok() ? (oda->certain ? "yes" : "no") : "error");
  };
  std::printf("\n");
  // The one-stop connection is certain even with an anonymous stopover.
  report_oda("flight flight", 0, 2);
  // A direct flight is NOT certain under ODA (it was not under CDA either,
  // but here even 'some edge out of ROM into the named domain' fails).
  report_oda("flight", 0, 2);
  // Walking the promised connection forward and back is certain.
  report_oda("flight flight^-", 1, 1);

  // Show an explicit ODA counterexample for the non-certain direct flight.
  instance.query = MustCompileRegex(MustParseRegex("flight"), alphabet);
  StatusOr<OdaResult> oda = CertainAnswerOda(instance, 0, 2);
  if (oda.ok() && !oda->certain && oda->counterexample.has_value()) {
    const GraphDb& db = *oda->counterexample;
    std::printf("\nODA counterexample for certain(flight)(ROM,HOU): %d nodes\n",
                db.NumNodes());
    for (int u = 0; u < db.NumNodes(); ++u) {
      for (const GraphDb::Edge& e : db.OutEdges(u)) {
        std::string from(db.NodeName(u)), to(db.NodeName(e.to));
        std::printf("  %s --flight--> %s\n", from.c_str(), to.c_str());
      }
    }
    std::printf(
        "(no direct ROM->HOU edge needed: the connection may route through\n"
        " another airport — named here, or anonymous under open-domain "
        "semantics)\n");
  }
  return 0;
}
